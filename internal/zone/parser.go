package zone

import (
	"bufio"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"resilientdns/internal/dnswire"
)

// ParseError reports a master-file syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string { return fmt.Sprintf("zone parse: line %d: %s", e.Line, e.Msg) }

// Parse reads a zone in RFC 1035 master-file format. origin is used for
// relative names unless overridden by a $ORIGIN directive; it also becomes
// the zone apex. Supported: $ORIGIN, $TTL, comments, parenthesised
// multi-line records, "@", blank-owner continuation, optional class and
// TTL fields, and the record types A, AAAA, NS, CNAME, SOA, MX, TXT, PTR,
// and SRV.
func Parse(r io.Reader, origin dnswire.Name) (*Zone, error) {
	z := New(origin)
	p := &parser{z: z, origin: origin, defaultTTL: 3600, lastOwner: origin}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	var pending []token
	parens := 0
	firstLine := 0
	for sc.Scan() {
		lineNo++
		toks, opened, closed, err := tokenize(sc.Text())
		if err != nil {
			return nil, &ParseError{Line: lineNo, Msg: err.Error()}
		}
		if parens == 0 {
			firstLine = lineNo
		}
		parens += opened - closed
		if parens < 0 {
			return nil, &ParseError{Line: lineNo, Msg: "unbalanced ')'"}
		}
		pending = append(pending, toks...)
		if parens > 0 {
			continue
		}
		if len(pending) > 0 {
			if err := p.record(pending, firstLine); err != nil {
				return nil, err
			}
		}
		pending = pending[:0]
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("zone parse: %w", err)
	}
	if parens != 0 {
		return nil, &ParseError{Line: lineNo, Msg: "unclosed '('"}
	}
	return z, nil
}

// ParseString is Parse over a string, for tests and embedded zones.
func ParseString(s string, origin dnswire.Name) (*Zone, error) {
	return Parse(strings.NewReader(s), origin)
}

// token is one master-file field, with a note of whether it appeared at
// column zero (which marks an owner-name field).
type token struct {
	text    string
	atStart bool
	quoted  bool
}

// tokenize splits one master-file line into fields, stripping comments and
// counting parentheses. Quoted strings keep their spaces.
func tokenize(line string) (toks []token, opened, closed int, err error) {
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ';':
			return toks, opened, closed, nil
		case c == ' ' || c == '\t':
			i++
		case c == '(':
			opened++
			i++
		case c == ')':
			closed++
			i++
		case c == '"':
			j := i + 1
			for j < len(line) && line[j] != '"' {
				j++
			}
			if j >= len(line) {
				return nil, 0, 0, fmt.Errorf("unterminated quoted string")
			}
			toks = append(toks, token{text: line[i+1 : j], atStart: i == 0, quoted: true})
			i = j + 1
		default:
			j := i
			for j < len(line) && !strings.ContainsRune(" \t;()\"", rune(line[j])) {
				j++
			}
			toks = append(toks, token{text: line[i:j], atStart: i == 0})
			i = j
		}
	}
	return toks, opened, closed, nil
}

type parser struct {
	z          *Zone
	origin     dnswire.Name
	defaultTTL uint32
	lastOwner  dnswire.Name
	lastTTL    uint32
}

func (p *parser) record(toks []token, line int) error {
	fail := func(format string, args ...any) error {
		return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
	}

	// Directives.
	if toks[0].text == "$ORIGIN" {
		if len(toks) != 2 {
			return fail("$ORIGIN needs one argument")
		}
		n, err := p.name(toks[1].text)
		if err != nil {
			return fail("$ORIGIN: %v", err)
		}
		p.origin = n
		return nil
	}
	if toks[0].text == "$TTL" {
		if len(toks) != 2 {
			return fail("$TTL needs one argument")
		}
		ttl, err := parseTTL(toks[1].text)
		if err != nil {
			return fail("$TTL: %v", err)
		}
		p.defaultTTL = ttl
		p.lastTTL = 0
		return nil
	}
	if strings.HasPrefix(toks[0].text, "$") {
		return fail("unsupported directive %s", toks[0].text)
	}

	// Owner name: present only when the line starts at column zero.
	owner := p.lastOwner
	if toks[0].atStart {
		n, err := p.name(toks[0].text)
		if err != nil {
			return fail("owner: %v", err)
		}
		owner = n
		toks = toks[1:]
		if len(toks) == 0 {
			return fail("record with owner only")
		}
	}
	p.lastOwner = owner

	// Optional TTL and class, in either order.
	ttl := p.defaultTTL
	if p.lastTTL != 0 {
		ttl = p.lastTTL
	}
	for len(toks) > 0 {
		t := toks[0].text
		if v, err := parseTTL(t); err == nil && !toks[0].quoted {
			ttl = v
			p.lastTTL = v
			toks = toks[1:]
			continue
		}
		if t == "IN" || t == "CH" {
			toks = toks[1:]
			continue
		}
		break
	}
	if len(toks) == 0 {
		return fail("record without type")
	}

	typ, err := dnswire.ParseType(toks[0].text)
	if err != nil {
		return fail("%v", err)
	}
	args := toks[1:]
	data, err := p.rdata(typ, args)
	if err != nil {
		return fail("%s: %v", typ, err)
	}
	rr := dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: ttl, Data: data}
	if err := p.z.Add(rr); err != nil {
		return fail("%v", err)
	}
	return nil
}

func (p *parser) rdata(typ dnswire.Type, args []token) (dnswire.RData, error) {
	text := func(i int) (string, error) {
		if i >= len(args) {
			return "", fmt.Errorf("missing field %d", i+1)
		}
		return args[i].text, nil
	}
	name := func(i int) (dnswire.Name, error) {
		s, err := text(i)
		if err != nil {
			return "", err
		}
		return p.name(s)
	}
	u16 := func(i int) (uint16, error) {
		s, err := text(i)
		if err != nil {
			return 0, err
		}
		v, err := strconv.ParseUint(s, 10, 16)
		return uint16(v), err
	}
	u32 := func(i int) (uint32, error) {
		s, err := text(i)
		if err != nil {
			return 0, err
		}
		return parseTTL(s)
	}

	switch typ {
	case dnswire.TypeA:
		s, err := text(0)
		if err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(s)
		if err != nil || !addr.Is4() {
			return nil, fmt.Errorf("bad IPv4 address %q", s)
		}
		return dnswire.A{Addr: addr}, nil
	case dnswire.TypeAAAA:
		s, err := text(0)
		if err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(s)
		if err != nil || !addr.Is6() || addr.Is4In6() {
			return nil, fmt.Errorf("bad IPv6 address %q", s)
		}
		return dnswire.AAAA{Addr: addr}, nil
	case dnswire.TypeNS:
		h, err := name(0)
		return dnswire.NS{Host: h}, err
	case dnswire.TypeCNAME:
		t, err := name(0)
		return dnswire.CNAME{Target: t}, err
	case dnswire.TypePTR:
		t, err := name(0)
		return dnswire.PTR{Target: t}, err
	case dnswire.TypeMX:
		pref, err := u16(0)
		if err != nil {
			return nil, err
		}
		h, err := name(1)
		return dnswire.MX{Preference: pref, Host: h}, err
	case dnswire.TypeTXT:
		if len(args) == 0 {
			return nil, fmt.Errorf("TXT needs at least one string")
		}
		var strs []string
		for _, a := range args {
			strs = append(strs, a.text)
		}
		return dnswire.TXT{Strings: strs}, nil
	case dnswire.TypeSOA:
		mname, err := name(0)
		if err != nil {
			return nil, err
		}
		rname, err := name(1)
		if err != nil {
			return nil, err
		}
		var nums [5]uint32
		for i := range nums {
			if nums[i], err = u32(2 + i); err != nil {
				return nil, err
			}
		}
		return dnswire.SOA{
			MName: mname, RName: rname,
			Serial: nums[0], Refresh: nums[1], Retry: nums[2],
			Expire: nums[3], Minimum: nums[4],
		}, nil
	case dnswire.TypeDNSKEY:
		flags, err := u16(0)
		if err != nil {
			return nil, err
		}
		proto, err := u16(1)
		if err != nil {
			return nil, err
		}
		alg, err := u16(2)
		if err != nil {
			return nil, err
		}
		keyB64, err := joinFrom(args, 3)
		if err != nil {
			return nil, err
		}
		key, err := base64.StdEncoding.DecodeString(keyB64)
		if err != nil {
			return nil, fmt.Errorf("bad DNSKEY key material: %v", err)
		}
		return dnswire.DNSKEY{
			Flags: flags, Protocol: uint8(proto), Algorithm: uint8(alg), PublicKey: key,
		}, nil
	case dnswire.TypeDS:
		tag, err := u16(0)
		if err != nil {
			return nil, err
		}
		alg, err := u16(1)
		if err != nil {
			return nil, err
		}
		dt, err := u16(2)
		if err != nil {
			return nil, err
		}
		digestHex, err := joinFrom(args, 3)
		if err != nil {
			return nil, err
		}
		digest, err := hex.DecodeString(digestHex)
		if err != nil {
			return nil, fmt.Errorf("bad DS digest: %v", err)
		}
		return dnswire.DS{
			KeyTag: tag, Algorithm: uint8(alg), DigestType: uint8(dt), Digest: digest,
		}, nil
	case dnswire.TypeRRSIG:
		coveredText, err := text(0)
		if err != nil {
			return nil, err
		}
		covered, err := dnswire.ParseType(coveredText)
		if err != nil {
			return nil, err
		}
		alg, err := u16(1)
		if err != nil {
			return nil, err
		}
		labels, err := u16(2)
		if err != nil {
			return nil, err
		}
		origTTL, err := u32(3)
		if err != nil {
			return nil, err
		}
		expiration, err := sigTime(args, 4)
		if err != nil {
			return nil, err
		}
		inceptionT, err := sigTime(args, 5)
		if err != nil {
			return nil, err
		}
		keyTag, err := u16(6)
		if err != nil {
			return nil, err
		}
		signer, err := name(7)
		if err != nil {
			return nil, err
		}
		sigB64, err := joinFrom(args, 8)
		if err != nil {
			return nil, err
		}
		sig, err := base64.StdEncoding.DecodeString(sigB64)
		if err != nil {
			return nil, fmt.Errorf("bad RRSIG signature: %v", err)
		}
		return dnswire.RRSIG{
			TypeCovered: covered, Algorithm: uint8(alg), Labels: uint8(labels),
			OrigTTL: origTTL, Expiration: expiration, Inception: inceptionT,
			KeyTag: keyTag, SignerName: signer, Signature: sig,
		}, nil
	case dnswire.TypeSRV:
		prio, err := u16(0)
		if err != nil {
			return nil, err
		}
		weight, err := u16(1)
		if err != nil {
			return nil, err
		}
		port, err := u16(2)
		if err != nil {
			return nil, err
		}
		target, err := name(3)
		return dnswire.SRV{Priority: prio, Weight: weight, Port: port, Target: target}, err
	default:
		return nil, fmt.Errorf("unsupported type in master file")
	}
}

// joinFrom concatenates the remaining fields from index i (base64 and hex
// material may be split across whitespace in master files).
func joinFrom(args []token, i int) (string, error) {
	if i >= len(args) {
		return "", fmt.Errorf("missing field %d", i+1)
	}
	var b strings.Builder
	for _, a := range args[i:] {
		b.WriteString(a.text)
	}
	return b.String(), nil
}

// sigTime parses an RRSIG timestamp: either seconds since the epoch or
// the RFC 4034 YYYYMMDDHHmmSS form.
func sigTime(args []token, i int) (uint32, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing field %d", i+1)
	}
	s := args[i].text
	if len(s) == 14 {
		t, err := time.Parse("20060102150405", s)
		if err == nil {
			return uint32(t.Unix()), nil
		}
	}
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad RRSIG time %q", s)
	}
	return uint32(v), nil
}

// name resolves a possibly-relative master-file name against the origin.
func (p *parser) name(s string) (dnswire.Name, error) {
	if s == "@" {
		return p.origin, nil
	}
	if strings.HasSuffix(s, ".") {
		return dnswire.CanonicalName(s)
	}
	if p.origin.IsRoot() {
		return dnswire.CanonicalName(s + ".")
	}
	return dnswire.CanonicalName(s + "." + string(p.origin))
}

// parseTTL parses a TTL as plain seconds or with s/m/h/d/w unit suffixes
// (e.g. "2d", "1h30m").
func parseTTL(s string) (uint32, error) {
	if s == "" {
		return 0, fmt.Errorf("empty TTL")
	}
	if v, err := strconv.ParseUint(s, 10, 32); err == nil {
		return uint32(v), nil
	}
	total := uint64(0)
	num := uint64(0)
	haveNum := false
	for _, c := range strings.ToLower(s) {
		switch {
		case c >= '0' && c <= '9':
			num = num*10 + uint64(c-'0')
			haveNum = true
		case c == 's' || c == 'm' || c == 'h' || c == 'd' || c == 'w':
			if !haveNum {
				return 0, fmt.Errorf("bad TTL %q", s)
			}
			mult := map[rune]uint64{'s': 1, 'm': 60, 'h': 3600, 'd': 86400, 'w': 604800}[c]
			total += num * mult
			num, haveNum = 0, false
		default:
			return 0, fmt.Errorf("bad TTL %q", s)
		}
	}
	if haveNum {
		return 0, fmt.Errorf("bad TTL %q", s)
	}
	if total > 1<<31 {
		return 0, fmt.Errorf("TTL %q too large", s)
	}
	return uint32(total), nil
}
