package weakrand_test

import (
	"path/filepath"
	"testing"

	"resilientdns/internal/analysis/antest"
	"resilientdns/internal/analysis/weakrand"
)

func TestWeakrand(t *testing.T) {
	prev := weakrand.Analyzer.Flags.Lookup("pkgs").Value.String()
	if err := weakrand.Analyzer.Flags.Set("pkgs", "weakrand_banned"); err != nil {
		t.Fatal(err)
	}
	defer weakrand.Analyzer.Flags.Set("pkgs", prev)

	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	antest.Run(t, dir, weakrand.Analyzer, "weakrand_seed", "weakrand_banned", "weakrand_ok")
}
