package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/topology"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func testNames(t *testing.T) []topology.TargetName {
	t.Helper()
	tree, err := topology.Generate(topology.Params{
		Seed: 1, NumTLDs: 4, SLDsPerTLD: 25, SubZoneFrac: 0.2,
		MinNS: 2, MaxNS: 3, MaxHostNames: 8,
	})
	if err != nil {
		t.Fatalf("topology.Generate: %v", err)
	}
	return tree.QueryableNames()
}

func smallParams(label string, seed int64) GenParams {
	p := DefaultGenParams(label, seed, epoch)
	p.Clients = 50
	p.TotalQueries = 5000
	return p
}

func TestGenerateBasic(t *testing.T) {
	tr := Generate(smallParams("TRC1", 1), testNames(t))
	if len(tr.Queries) != 5000 {
		t.Fatalf("generated %d queries, want 5000", len(tr.Queries))
	}
	if tr.Label != "TRC1" || tr.Clients != 50 {
		t.Errorf("trace meta = %q/%d", tr.Label, tr.Clients)
	}
	for i := 1; i < len(tr.Queries); i++ {
		if tr.Queries[i].At.Before(tr.Queries[i-1].At) {
			t.Fatal("queries not time-ordered")
		}
	}
	last := tr.Queries[len(tr.Queries)-1].At
	if last.After(epoch.Add(tr.Duration)) {
		t.Errorf("query at %v beyond horizon", last)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	names := testNames(t)
	a := Generate(smallParams("T", 42), names)
	b := Generate(smallParams("T", 42), names)
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("lengths differ")
	}
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatalf("query %d differs: %+v vs %+v", i, a.Queries[i], b.Queries[i])
		}
	}
}

func TestGeneratePopularitySkew(t *testing.T) {
	tr := Generate(smallParams("T", 7), testNames(t))
	counts := ZoneQueryCounts(tr)
	var max, total uint64
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	// Zipf skew: the hottest zone must dominate well beyond uniform.
	uniform := total / uint64(len(counts))
	if max < 5*uniform {
		t.Errorf("hottest zone %d queries vs uniform %d: no skew?", max, uniform)
	}
}

func TestGenerateTemporalLocality(t *testing.T) {
	p := smallParams("T", 9)
	p.RepeatProb = 0.5
	tr := Generate(p, testNames(t))
	names := make(map[dnswire.Name]int)
	for _, q := range tr.Queries {
		names[q.Name]++
	}
	// With repeats, distinct names must be far fewer than queries.
	if len(names) > len(tr.Queries)/2 {
		t.Errorf("%d distinct names out of %d queries: no locality", len(names), len(tr.Queries))
	}
}

func TestGenerateNXQueries(t *testing.T) {
	p := smallParams("T", 11)
	p.NXFrac = 0.2
	tr := Generate(p, testNames(t))
	nx := 0
	for _, q := range tr.Queries {
		if strings.Contains(string(q.Name), "nx-") {
			nx++
		}
	}
	if nx == 0 {
		t.Error("no NX queries generated")
	}
	frac := float64(nx) / float64(len(tr.Queries))
	// Repeats recycle NX names too, so accept a broad range around 0.2.
	if frac < 0.05 || frac > 0.4 {
		t.Errorf("NX fraction = %.2f, want around 0.2", frac)
	}
}

func TestGenerateDiurnalShape(t *testing.T) {
	p := smallParams("T", 13)
	p.TotalQueries = 20000
	p.Diurnal = true
	tr := Generate(p, testNames(t))
	night, day := 0, 0
	for _, q := range tr.Queries {
		h := q.At.Sub(epoch) % (24 * time.Hour)
		if h < 5*time.Hour {
			night++
		}
		if h >= 10*time.Hour && h < 15*time.Hour {
			day++
		}
	}
	if day <= night {
		t.Errorf("day=%d night=%d: no diurnal pattern", day, night)
	}
}

func TestComputeStats(t *testing.T) {
	tr := Generate(smallParams("TRC9", 17), testNames(t))
	st := ComputeStats(tr)
	if st.RequestsIn != len(tr.Queries) {
		t.Errorf("RequestsIn = %d", st.RequestsIn)
	}
	if st.Clients != 50 {
		t.Errorf("Clients = %d, want 50", st.Clients)
	}
	if st.Names == 0 || st.Zones == 0 || st.Names < st.Zones {
		t.Errorf("Names=%d Zones=%d", st.Names, st.Zones)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := Generate(smallParams("TRC2", 23), testNames(t))
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if got.Label != tr.Label || got.Clients != tr.Clients || got.Duration != tr.Duration {
		t.Errorf("meta mismatch: %+v", got)
	}
	if len(got.Queries) != len(tr.Queries) {
		t.Fatalf("query count %d, want %d", len(got.Queries), len(tr.Queries))
	}
	for i := range got.Queries {
		a, b := got.Queries[i], tr.Queries[i]
		if a.Client != b.Client || a.Name != b.Name || a.Type != b.Type {
			t.Fatalf("query %d mismatch: %+v vs %+v", i, a, b)
		}
		if d := a.At.Sub(b.At); d > time.Millisecond || d < -time.Millisecond {
			t.Fatalf("query %d time drift %v", i, d)
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	tests := []struct {
		name string
		text string
	}{
		{"bad fields", "123 4 www.example.com."},
		{"bad offset", "abc 4 www.example.com. A"},
		{"bad client", "1 x www.example.com. A"},
		{"bad type", "1 2 www.example.com. BOGUS"},
		{"bad name", "1 2 www..com. A"},
		{"bad start", "# start notatime"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadTrace(strings.NewReader(tt.text)); err == nil {
				t.Error("ReadTrace succeeded, want error")
			}
		})
	}
}

func TestGenerateEmptyInputs(t *testing.T) {
	tr := Generate(GenParams{Label: "X"}, nil)
	if len(tr.Queries) != 0 {
		t.Errorf("empty generation produced %d queries", len(tr.Queries))
	}
}
