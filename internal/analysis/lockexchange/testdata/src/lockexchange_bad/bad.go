// Package lockexchange_bad is a failing fixture: mutexes held across
// calls that block on upstream I/O.
package lockexchange_bad

import (
	"context"
	"sync"
	"time"
)

// Transport mirrors the resilientdns transport.Transport shape.
type Transport interface {
	Exchange(ctx context.Context, server string, query []byte) ([]byte, error)
}

// Resolver is a caricature of the seed resolver's global-lock design.
type Resolver struct {
	mu sync.Mutex
	tr Transport
}

// Query holds the lock across the upstream exchange: the PR 1 bug.
func (r *Resolver) Query(ctx context.Context, server string, q []byte) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tr.Exchange(ctx, server, q) // want "call to Exchange \\(upstream query\\) while holding r.mu"
}

// SleepUnderLock blocks on the clock with the lock held.
func (r *Resolver) SleepUnderLock() {
	r.mu.Lock()
	time.Sleep(time.Second) // want "call to time.Sleep while holding r.mu"
	r.mu.Unlock()
}

// refetch reaches Exchange; callers that lock around it are flagged
// via same-package propagation.
func (r *Resolver) refetch(ctx context.Context, server string) ([]byte, error) {
	return r.tr.Exchange(ctx, server, nil)
}

// Renew holds the lock across a helper that reaches blocking I/O.
func (r *Resolver) Renew(ctx context.Context, server string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := r.refetch(ctx, server) // want "call to refetch \\(reaches blocking I/O\\) while holding r.mu"
	return err
}

// RWUnderRLock shows RLock is tracked too.
func (r *Resolver) RWUnderRLock(ctx context.Context, state *sync.RWMutex) ([]byte, error) {
	state.RLock()
	defer state.RUnlock()
	return r.tr.Exchange(ctx, "a", nil) // want "call to Exchange \\(upstream query\\) while holding state"
}
