package cache

import (
	"fmt"
	"sync"
	"testing"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
)

// TestConcurrentMixedOperations hammers the sharded cache from many
// goroutines with the full operation mix. Run with -race; correctness of
// each operation is covered by the single-threaded tests, this one is
// about memory safety and deadlock freedom across shards.
func TestConcurrentMixedOperations(t *testing.T) {
	c := New(Config{Clock: simclock.Real{}, MaxEntries: 200})
	const (
		workers = 16
		iters   = 300
		names   = 64 // spread across (and collide within) the shards
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("host%d.example.", (w*7+i)%names)
				switch i % 6 {
				case 0, 1:
					c.Put([]dnswire.RR{rrA(name, 300, "10.0.0.1")}, CredAnswer, i%2 == 0)
				case 2:
					if e := c.Get(dnswire.MustName(name), dnswire.TypeA); e != nil {
						// Entries are immutable: reading RRs without a
						// lock must be safe even while writers replace
						// the entry.
						_ = e.RRs[0].Name
						_ = e.Expires
					}
				case 3:
					c.Extend(dnswire.MustName(name), dnswire.TypeA)
				case 4:
					if i%30 == 4 {
						c.Evict(dnswire.MustName(name), dnswire.TypeA)
					} else {
						c.Peek(dnswire.MustName(name), dnswire.TypeA)
					}
				case 5:
					switch i % 4 {
					case 0:
						c.Stats()
					case 1:
						c.Len()
					case 2:
						c.SweepExpired()
					case 3:
						c.HitRate()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Len(); got > 200 {
		t.Errorf("Len = %d exceeds MaxEntries 200 after concurrent churn", got)
	}
}
