GO ?= go

.PHONY: build vet lint lint-sarif test race check bench fuzz mesh-test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the dnslint analyzer suite (internal/analysis/...) over the
# repo via the vet -vettool protocol. Zero unannotated findings is the
# bar; suppress with `//dnslint:ignore <analyzer> <reason>`. Analysis
# scope (which packages each invariant is enforced in) lives in each
# analyzer's -pkgs default, never here: everything, cmd/ and _test.go
# included, is handed to the driver. Repeat runs are cheap — vet caches
# per-package facts (the dataflow index, taint and deadline summaries)
# in the go build cache, so only changed packages re-analyze.
lint:
	$(GO) build -o bin/dnslint ./cmd/dnslint
	$(GO) vet -vettool=$(abspath bin/dnslint) ./...

# lint-sarif emits the same findings as a SARIF 2.1.0 log for CI code
# scanning. Always exits 0 on findings: `make lint` is the gate, this
# is the reporter.
lint-sarif:
	$(GO) build -o bin/dnslint ./cmd/dnslint
	./bin/dnslint -sarif ./... > dnslint.sarif

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# mesh-test runs the multi-process mesh integration test: real dnscache
# binaries on real sockets, peer-fetching through an upstream outage.
mesh-test:
	DNSCACHE_MESH_PROC=1 $(GO) test -race -run TestMeshMultiProcess -v ./cmd/dnscache

# check is what CI runs: the race detector and dnslint gate every PR.
check: build vet lint race mesh-test

bench:
	$(GO) test -bench=. -benchtime=1x .

# fuzz is the CI smoke pass over the wire-format and persist-format parsers.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzUnpack -fuzztime=30s ./internal/dnswire
	$(GO) test -run='^$$' -fuzz=FuzzCanonicalName -fuzztime=30s ./internal/dnswire
	$(GO) test -run='^$$' -fuzz=FuzzParseStore -fuzztime=30s ./internal/persist
	$(GO) test -run='^$$' -fuzz=FuzzMeshFrame -fuzztime=30s ./internal/mesh
