package core

import (
	"testing"
	"time"
)

func TestLRUResetsCredit(t *testing.T) {
	p := LRU{C: 3}
	if got := p.Update(0, time.Hour); got != 3 {
		t.Errorf("Update(0) = %v, want 3", got)
	}
	if got := p.Update(2.5, time.Hour); got != 3 {
		t.Errorf("Update(2.5) = %v, want 3 (reset, not add)", got)
	}
}

func TestLFUAccumulatesWithCap(t *testing.T) {
	p := LFU{C: 3, Max: 7}
	c := 0.0
	c = p.Update(c, time.Hour) // 3
	c = p.Update(c, time.Hour) // 6
	c = p.Update(c, time.Hour) // capped at 7
	if c != 7 {
		t.Errorf("credit = %v, want 7", c)
	}
}

func TestLFUNoCapWhenZero(t *testing.T) {
	p := LFU{C: 2}
	c := 0.0
	for i := 0; i < 100; i++ {
		c = p.Update(c, time.Hour)
	}
	if c != 200 {
		t.Errorf("credit = %v, want 200", c)
	}
}

func TestALRUNormalisesByTTL(t *testing.T) {
	p := ALRU{C: 3}
	// TTL of one day: credit = 3 renewals = 3 extra days.
	if got := p.Update(0, 24*time.Hour); got != 3 {
		t.Errorf("Update(TTL=1d) = %v, want 3", got)
	}
	// TTL of one hour: 72 renewals, still 3 extra days.
	if got := p.Update(0, time.Hour); got != 72 {
		t.Errorf("Update(TTL=1h) = %v, want 72", got)
	}
	// Extra residency = credit × TTL must be TTL-independent.
	for _, ttl := range []time.Duration{time.Minute, time.Hour, 12 * time.Hour, 24 * time.Hour} {
		credit := p.Update(0, ttl)
		extra := time.Duration(credit * float64(ttl))
		if diff := (extra - 3*24*time.Hour).Abs(); diff > time.Second {
			t.Errorf("TTL %v: extra residency %v, want 72h", ttl, extra)
		}
	}
}

func TestALFUCapIsTTLNeutral(t *testing.T) {
	p := ALFU{C: 1, MaxDays: 5}
	for _, ttl := range []time.Duration{time.Minute, time.Hour, 24 * time.Hour} {
		c := 0.0
		for i := 0; i < 1000; i++ {
			c = p.Update(c, ttl)
		}
		extra := time.Duration(c * float64(ttl))
		if diff := (extra - 5*24*time.Hour).Abs(); diff > time.Second {
			t.Errorf("TTL %v: capped residency %v, want 120h", ttl, extra)
		}
	}
}

func TestALRUZeroTTLFallsBack(t *testing.T) {
	p := ALRU{C: 2}
	if got := p.Update(0, 0); got != 2 {
		t.Errorf("Update(TTL=0) = %v, want plain C", got)
	}
}

func TestPolicyNames(t *testing.T) {
	tests := []struct {
		p    RenewalPolicy
		want string
	}{
		{LRU{C: 1}, "LRU(1)"},
		{LFU{C: 3, Max: 30}, "LFU(3)"},
		{ALRU{C: 5}, "A-LRU(5)"},
		{ALFU{C: 5, MaxDays: 50}, "A-LFU(5)"},
	}
	for _, tt := range tests {
		if got := tt.p.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}

func TestDefaultLFUMax(t *testing.T) {
	if got := DefaultLFUMax(3); got != 30 {
		t.Errorf("DefaultLFUMax(3) = %v, want 30", got)
	}
}

func TestParsePolicy(t *testing.T) {
	tests := []struct {
		in     string
		credit float64
		want   string
		err    bool
	}{
		{"", 3, "", false},
		{"lru", 3, "LRU(3)", false},
		{"LFU", 5, "LFU(5)", false},
		{"a-lru", 1, "A-LRU(1)", false},
		{"alfu", 5, "A-LFU(5)", false},
		{"bogus", 3, "", true},
	}
	for _, tt := range tests {
		p, err := ParsePolicy(tt.in, tt.credit)
		if tt.err {
			if err == nil {
				t.Errorf("ParsePolicy(%q) succeeded", tt.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", tt.in, err)
			continue
		}
		if tt.want == "" {
			if p != nil {
				t.Errorf("ParsePolicy(%q) = %v, want nil", tt.in, p)
			}
			continue
		}
		if p.Name() != tt.want {
			t.Errorf("ParsePolicy(%q).Name() = %q, want %q", tt.in, p.Name(), tt.want)
		}
	}
}
