package stub_test

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/stub"
	"resilientdns/internal/transport"
)

// Example resolves a host through a caching server (faked here by a local
// UDP handler) the way an application would use /etc/resolv.conf entries.
func Example() {
	srv := &transport.UDPServer{Handler: transport.HandlerFunc(
		func(q *dnswire.Message) *dnswire.Message {
			r := q.Reply()
			r.Flags.RecursionAvailable = true
			r.Answer = []dnswire.RR{{
				Name: q.Question[0].Name, Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.80")},
			}}
			return r
		})}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	client := &stub.Client{
		Servers: []transport.Addr{transport.Addr(addr)},
		Timeout: time.Second,
	}
	addrs, err := client.LookupHost(context.Background(), "www.example.com")
	if err != nil {
		panic(err)
	}
	fmt.Println(addrs[0])
	// Output:
	// 192.0.2.80
}
