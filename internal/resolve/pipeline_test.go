package resolve

import (
	"context"
	"fmt"
	"testing"
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/transport"
)

// TestStageBoundaries pins down which pipeline stage answers each
// canonical scenario: what the CacheLookup hot path may serve on its
// own, and what it must hand to the slow path (ChainWalk → Iterate →
// StaleFallback). Every case runs against a dead upstream so any
// answer that does arrive provably came from the claimed stage.
func TestStageBoundaries(t *testing.T) {
	www := dnswire.MustName("www.test.")
	cases := []struct {
		name string
		cfg  Config // Clock/Cache/Transport filled by the harness
		// setup primes the cache/negative store and may advance time.
		setup func(r *Resolver, clk *simclock.Virtual)
		// wantHot: the hot path answers by itself (no slow path needed).
		wantHot bool
		// check inspects the final result (hot answer if wantHot, the
		// slow-path ResolveChain result otherwise).
		check func(t *testing.T, r *Resolver, res *Result, err error)
	}{
		{
			name: "cache-hit",
			setup: func(r *Resolver, clk *simclock.Virtual) {
				r.cache.Put([]dnswire.RR{rrA("www.test.", 300, "10.1.1.1")}, cache.CredAuthority, false)
			},
			wantHot: true,
			check: func(t *testing.T, r *Resolver, res *Result, err error) {
				if err != nil || res.RCode != dnswire.RCodeNoError || !res.FromCache {
					t.Fatalf("res = %+v, err = %v, want cached NoError", res, err)
				}
				if c := r.Counters(); c.QueriesOut != 0 {
					t.Errorf("cache hit sent %d upstream queries", c.QueriesOut)
				}
			},
		},
		{
			name: "negative-hit",
			cfg:  Config{NegativeTTL: time.Minute},
			setup: func(r *Resolver, clk *simclock.Virtual) {
				r.negativeStore(www, dnswire.TypeA, dnswire.RCodeNXDomain, nil)
			},
			wantHot: true,
			check: func(t *testing.T, r *Resolver, res *Result, err error) {
				if err != nil || res.RCode != dnswire.RCodeNXDomain || !res.FromCache {
					t.Fatalf("res = %+v, err = %v, want cached NXDOMAIN", res, err)
				}
			},
		},
		{
			name: "stale-fallback",
			cfg:  Config{ServeStale: 24 * time.Hour},
			setup: func(r *Resolver, clk *simclock.Virtual) {
				r.cache.Put([]dnswire.RR{rrA("www.test.", 300, "10.1.1.1")}, cache.CredAuthority, false)
				clk.Advance(10 * time.Minute) // expired; upstream is dead
			},
			wantHot: false,
			check: func(t *testing.T, r *Resolver, res *Result, err error) {
				if err != nil {
					t.Fatalf("stale fallback failed: %v", err)
				}
				if len(res.Answer) != 1 || res.Answer[0].TTL != StaleServeTTL {
					t.Fatalf("res = %+v, want one stale RR with TTL %d", res, StaleServeTTL)
				}
				if c := r.Counters(); c.StaleAnswers != 1 {
					t.Errorf("StaleAnswers = %d, want 1", c.StaleAnswers)
				}
			},
		},
		{
			name: "prefetch-window-inline",
			cfg:  Config{Prefetch: true},
			setup: func(r *Resolver, clk *simclock.Virtual) {
				r.cache.Put([]dnswire.RR{rrA("www.test.", 300, "10.1.1.1")}, cache.CredAuthority, false)
				clk.Advance(280 * time.Second) // 20s left < 30s window
			},
			// Inline mode: the hot path declines so the slow path can
			// refetch before serving; the (failed) refetch is harmless
			// and the still-live cached answer comes back.
			wantHot: false,
			check: func(t *testing.T, r *Resolver, res *Result, err error) {
				if err != nil || !res.FromCache || len(res.Answer) != 1 {
					t.Fatalf("res = %+v, err = %v, want the cached answer", res, err)
				}
				if c := r.Counters(); c.PrefetchQueries != 1 {
					t.Errorf("PrefetchQueries = %d, want 1 inline refresh", c.PrefetchQueries)
				}
			},
		},
		{
			name: "prefetch-window-async",
			cfg:  Config{Prefetch: true, AsyncPrefetch: true},
			setup: func(r *Resolver, clk *simclock.Virtual) {
				r.cache.Put([]dnswire.RR{rrA("www.test.", 300, "10.1.1.1")}, cache.CredAuthority, false)
				clk.Advance(280 * time.Second)
			},
			// Async mode: the hit is served immediately from the hot
			// path; the refresh happens on the background pool.
			wantHot: true,
			check: func(t *testing.T, r *Resolver, res *Result, err error) {
				if err != nil || !res.FromCache || len(res.Answer) != 1 {
					t.Fatalf("res = %+v, err = %v, want the cached answer", res, err)
				}
			},
		},
		{
			name:    "cold-miss",
			setup:   func(r *Resolver, clk *simclock.Virtual) {},
			wantHot: false,
			check: func(t *testing.T, r *Resolver, res *Result, err error) {
				if err == nil {
					t.Fatalf("res = %+v, want failure with a dead upstream and cold cache", res)
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := simclock.NewVirtual(epoch)
			tc.cfg.Clock = clk
			tc.cfg.Cache = cache.New(cache.Config{Clock: clk, KeepStale: tc.cfg.ServeStale})
			r := newTestResolver(t, tc.cfg)
			defer r.Close()
			tc.setup(r, clk)

			hot, err := r.Lookup(nil, www, dnswire.TypeA)
			if (hot != nil) != tc.wantHot {
				t.Fatalf("hot path answered = %v (res %+v, err %v), want %v", hot != nil, hot, err, tc.wantHot)
			}
			if tc.wantHot {
				tc.check(t, r, hot, err)
				return
			}
			if err != nil {
				t.Fatalf("Lookup errored on its way to the slow path: %v", err)
			}
			res, err := r.ResolveChain(context.Background(), nil, www, dnswire.TypeA)
			tc.check(t, r, res, err)
		})
	}
}

// TestGlueDepthBounded: resolveMissingGlue must stop recursing at
// maxGlueDepth instead of chasing an arbitrarily deep out-of-bailiwick
// name-server dependency chain.
func TestGlueDepthBounded(t *testing.T) {
	var attempts int
	counting := transport.Exchanger(func(context.Context, transport.Addr, *dnswire.Message) (*dnswire.Message, error) {
		attempts++
		return nil, transport.ErrTimeout
	})
	r := newTestResolver(t, Config{Transport: counting})
	// child.test.'s only server is out of bailiwick with no cached glue.
	r.cache.Put([]dnswire.RR{rrNS("child.test.", 3600, "ns1.other.")}, cache.CredAuthority, true)

	r.resolveMissingGlue(context.Background(), nil, dnswire.MustName("child.test."), maxGlueDepth)
	if attempts != 0 {
		t.Errorf("glue resolution at maxGlueDepth still sent %d queries", attempts)
	}

	r.resolveMissingGlue(context.Background(), nil, dnswire.MustName("child.test."), 0)
	if attempts == 0 {
		t.Error("glue resolution below maxGlueDepth attempted nothing")
	}
}

// TestGlueBudgetBoundsFanout is the NXNSAttack regression test: a cached
// delegation naming many out-of-bailiwick servers with no glue must stop
// multiplying upstream traffic once the query's aggregate glue budget is
// spent — the budget bounds sibling fanout, not just nesting depth.
func TestGlueBudgetBoundsFanout(t *testing.T) {
	const nsCount = 24

	run := func(budget int) (attempts int, c CounterSnapshot) {
		var n int
		counting := transport.Exchanger(func(context.Context, transport.Addr, *dnswire.Message) (*dnswire.Message, error) {
			n++
			return nil, transport.ErrTimeout
		})
		r := newTestResolver(t, Config{Transport: counting, MaxGlueFetches: budget})
		var set []dnswire.RR
		for i := 0; i < nsCount; i++ {
			set = append(set, rrNS("victim.test.", 3600, fmt.Sprintf("ns%d.elsewhere.", i)))
		}
		r.cache.Put(set, cache.CredAuthority, true)

		ctx := withGlueBudget(context.Background(), r.cfg.MaxGlueFetches)
		r.resolveMissingGlue(ctx, nil, dnswire.MustName("victim.test."), 0)
		return n, r.Counters()
	}

	boundedAttempts, bounded := run(4)
	if bounded.GlueFetches != 4 {
		t.Errorf("GlueFetches = %d, want exactly the budget of 4", bounded.GlueFetches)
	}
	if bounded.GlueBudgetExhausted == 0 {
		t.Error("budget exhaustion never counted despite 24 candidate servers")
	}

	unboundedAttempts, unbounded := run(-1)
	if unbounded.GlueFetches != nsCount {
		t.Errorf("unbounded run fetched glue %d times, want all %d", unbounded.GlueFetches, nsCount)
	}
	if boundedAttempts >= unboundedAttempts {
		t.Errorf("budget did not reduce upstream traffic: %d attempts bounded vs %d unbounded",
			boundedAttempts, unboundedAttempts)
	}
}

// TestGlueBudgetInstalledPerQuery checks the budget rides the public
// entry point's context: two sequential ResolveChain calls each get a
// fresh pool rather than sharing one.
func TestGlueBudgetInstalledPerQuery(t *testing.T) {
	// The root serves the NXNS-shaped referral — glueless delegation to
	// eight out-of-bailiwick servers; every other query times out.
	victim := dnswire.MustName("victim.test.")
	referring := transport.Exchanger(func(_ context.Context, _ transport.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		if !q.Question[0].Name.IsSubdomainOf(victim) {
			return nil, transport.ErrTimeout
		}
		resp := q.Reply()
		for i := 0; i < 8; i++ {
			resp.Authority = append(resp.Authority, rrNS("victim.test.", 3600, fmt.Sprintf("ns%d.elsewhere.", i)))
		}
		return resp, nil
	})
	r := newTestResolver(t, Config{Transport: referring, MaxGlueFetches: 2})

	for call := 1; call <= 2; call++ {
		_, _ = r.ResolveChain(context.Background(), nil, dnswire.MustName("www.victim.test."), dnswire.TypeA)
		if got := r.Counters().GlueFetches; got != uint64(2*call) {
			t.Fatalf("after call %d GlueFetches = %d, want %d (a fresh 2-fetch budget per query)",
				call, got, 2*call)
		}
	}
}
