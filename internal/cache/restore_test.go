package cache

import (
	"testing"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
)

// snapshotEntries captures what a persistence snapshot would: every entry
// Range yields, as RestoreEntry values.
func snapshotEntries(c *Cache) []RestoreEntry {
	var out []RestoreEntry
	c.Range(func(e *Entry) bool {
		out = append(out, RestoreEntry{
			RRs:      e.RRs,
			Cred:     e.Cred,
			Infra:    e.Infra,
			OrigTTL:  e.OrigTTL,
			Expires:  e.Expires,
			StoredAt: e.StoredAt,
		})
		return true
	})
	return out
}

func TestRangeVisitsLiveAndStale(t *testing.T) {
	c, clk := newTestCache(t, Config{KeepStale: time.Hour})
	c.Put([]dnswire.RR{rrA("live.edu.", 3600, "192.0.2.1")}, CredAnswer, false)
	c.Put([]dnswire.RR{rrA("dead.edu.", 60, "192.0.2.2")}, CredAnswer, false)
	clk.Advance(2 * time.Minute)
	// Retire dead.edu. into stale retention via a lookup.
	if c.Get(dnswire.MustName("dead.edu."), dnswire.TypeA) != nil {
		t.Fatal("expired entry served live")
	}
	n := 0
	c.Range(func(e *Entry) bool { n++; return true })
	if n != 2 {
		t.Errorf("Range visited %d entries, want 2 (live + stale)", n)
	}
	// Early termination.
	n = 0
	c.Range(func(e *Entry) bool { n++; return false })
	if n != 1 {
		t.Errorf("Range ignored false return, visited %d", n)
	}
}

func TestRestoreReclampsTTL(t *testing.T) {
	// The source cache allowed 10h; the restoring cache clamps at 1h — as
	// when -max-ttl is lowered between runs.
	src, clk := newTestCache(t, Config{MaxTTL: 10 * time.Hour})
	src.Put([]dnswire.RR{rrA("www.edu.", 36000, "192.0.2.1")}, CredAnswer, false)

	dst := New(Config{Clock: clk, MaxTTL: time.Hour})
	for _, re := range snapshotEntries(src) {
		if !dst.Restore(re) {
			t.Fatal("Restore rejected a live entry")
		}
	}
	e := dst.Peek(dnswire.MustName("www.edu."), dnswire.TypeA)
	if e == nil {
		t.Fatal("entry not restored")
	}
	if e.OrigTTL != time.Hour {
		t.Errorf("OrigTTL = %v, want re-clamped 1h", e.OrigTTL)
	}
	if want := clk.Now().Add(time.Hour); e.Expires.After(want) {
		t.Errorf("Expires = %v, beyond the clamp %v", e.Expires, want)
	}
}

func TestRestoreDropsExpired(t *testing.T) {
	c, clk := newTestCache(t, Config{})
	re := RestoreEntry{
		RRs:      []dnswire.RR{rrA("www.edu.", 300, "192.0.2.1")},
		Cred:     CredAnswer,
		OrigTTL:  5 * time.Minute,
		Expires:  clk.Now().Add(-time.Minute),
		StoredAt: clk.Now().Add(-6 * time.Minute),
	}
	if c.Restore(re) {
		t.Error("Restore kept an expired entry with no stale retention")
	}
	if c.Len() != 0 {
		t.Errorf("cache holds %d entries", c.Len())
	}
}

func TestRestoreKeepsStaleWithinWindow(t *testing.T) {
	c, clk := newTestCache(t, Config{KeepStale: time.Hour})
	name := dnswire.MustName("www.edu.")
	re := RestoreEntry{
		RRs:      []dnswire.RR{rrA("www.edu.", 300, "192.0.2.1")},
		Cred:     CredAnswer,
		OrigTTL:  5 * time.Minute,
		Expires:  clk.Now().Add(-30 * time.Minute), // inside the window
		StoredAt: clk.Now().Add(-35 * time.Minute),
	}
	if !c.Restore(re) {
		t.Fatal("Restore dropped an entry inside the stale window")
	}
	if c.Get(name, dnswire.TypeA) != nil {
		t.Error("stale entry served as live")
	}
	if c.GetStale(name, dnswire.TypeA) == nil {
		t.Error("restored stale entry not servable via GetStale")
	}

	re.Expires = clk.Now().Add(-2 * time.Hour) // beyond the window
	re.RRs = []dnswire.RR{rrA("old.edu.", 300, "192.0.2.2")}
	if c.Restore(re) {
		t.Error("Restore kept an entry beyond the stale window")
	}
}

func TestRestoreRejectsCorruptRRsets(t *testing.T) {
	c, _ := newTestCache(t, Config{})
	if c.Restore(RestoreEntry{}) {
		t.Error("Restore accepted an empty RRset")
	}
	mixed := RestoreEntry{
		RRs:     []dnswire.RR{rrA("a.edu.", 300, "192.0.2.1"), rrA("b.edu.", 300, "192.0.2.2")},
		Cred:    CredAnswer,
		OrigTTL: 5 * time.Minute,
	}
	if c.Restore(mixed) {
		t.Error("Restore accepted a mixed-owner RRset")
	}
}

func TestRestoreDoesNotFireOnChange(t *testing.T) {
	fired := 0
	clk := simclock.NewVirtual(epoch)
	c := New(Config{
		Clock:    clk,
		OnChange: func(op ChangeOp, key Key, e *Entry) { fired++ },
	})
	c.Restore(RestoreEntry{
		RRs:     []dnswire.RR{rrA("www.edu.", 300, "192.0.2.1")},
		Cred:    CredAnswer,
		OrigTTL: 5 * time.Minute,
		Expires: clk.Now().Add(5 * time.Minute),
	})
	if fired != 0 {
		t.Errorf("Restore fired OnChange %d times", fired)
	}
	// Sanity: normal mutations do fire.
	c.Put([]dnswire.RR{rrA("live.edu.", 300, "192.0.2.3")}, CredAnswer, false)
	if fired != 1 {
		t.Errorf("Put fired OnChange %d times, want 1", fired)
	}
}

func TestOnChangeReportsMutations(t *testing.T) {
	type change struct {
		op  ChangeOp
		key Key
	}
	var got []change
	clk := simclock.NewVirtual(epoch)
	c := New(Config{
		Clock:           clk,
		RefreshInfraTTL: true,
		OnChange:        func(op ChangeOp, key Key, e *Entry) { got = append(got, change{op, key}) },
	})
	set := []dnswire.RR{rrNS("ucla.edu.", 3600, "ns1.ucla.edu.")}
	key := Key{Name: dnswire.MustName("ucla.edu."), Type: dnswire.TypeNS}
	c.Put(set, CredAuthority, true) // ChangePut
	c.Put(set, CredAuthority, true) // refresh → ChangeExtend
	c.Extend(key.Name, key.Type)    // ChangeExtend
	c.Evict(key.Name, key.Type)     // ChangeEvict
	c.Evict(key.Name, key.Type)     // absent: no event
	want := []change{
		{ChangePut, key},
		{ChangeExtend, key},
		{ChangeExtend, key},
		{ChangeEvict, key},
	}
	if len(got) != len(want) {
		t.Fatalf("observed %d changes (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("change[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestExtendStaleTombstoneAcrossRestore is the snapshot→restore interplay
// test: entries that were extended before the snapshot keep their extended
// life after restore; entries that expire between snapshot and reload come
// back only as stale (when retention is on) and still support the
// tombstone/gap bookkeeping for the queries that follow.
func TestExtendStaleTombstoneAcrossRestore(t *testing.T) {
	src, clk := newTestCache(t, Config{KeepStale: time.Hour, RefreshInfraTTL: true})
	extName := dnswire.MustName("ext.edu.")
	dieName := dnswire.MustName("die.edu.")
	src.Put([]dnswire.RR{rrNS("ext.edu.", 600, "ns1.ext.edu.")}, CredAuthority, true)
	src.Put([]dnswire.RR{rrA("die.edu.", 600, "192.0.2.9")}, CredAnswer, false)

	// A renewal refetch extends ext.edu. 5 minutes in: its expiry becomes
	// t0+5m+10m.
	clk.Advance(5 * time.Minute)
	if !src.Extend(extName, dnswire.TypeNS) {
		t.Fatal("Extend failed")
	}
	snap := snapshotEntries(src) // the "snapshot" is cut here

	// The process is down for 7 minutes: die.edu. (expires t0+10m) dies
	// during the outage; ext.edu. (expires t0+15m) survives it.
	clk.Advance(7 * time.Minute)
	dst := New(Config{Clock: clk, KeepStale: time.Hour, RefreshInfraTTL: true})
	kept := 0
	for _, re := range snap {
		if dst.Restore(re) {
			kept++
		}
	}
	if kept != 2 {
		t.Fatalf("restored %d entries, want 2 (one live, one stale)", kept)
	}

	// The extended entry is alive because of the pre-snapshot Extend.
	if dst.Get(extName, dnswire.TypeNS) == nil {
		t.Error("extended entry did not survive the restart")
	}
	// The dead entry is a stale-only hit...
	if dst.Get(dieName, dnswire.TypeA) != nil {
		t.Error("expired entry served as live after restore")
	}
	if dst.GetStale(dieName, dnswire.TypeA) == nil {
		t.Error("expired entry not servable as stale after restore")
	}
	// ...and the Get miss above retired it with a tombstone, so the next
	// Put measures the expiry gap — the Fig. 3 bookkeeping keeps working
	// across restarts.
	gapSeen := false
	dst2 := New(Config{
		Clock:     clk,
		KeepStale: time.Hour,
		OnGap:     func(key Key, gap, origTTL time.Duration) { gapSeen = true },
	})
	for _, re := range snap {
		dst2.Restore(re)
	}
	if dst2.Get(dieName, dnswire.TypeA) != nil {
		t.Fatal("expired entry served as live")
	}
	dst2.Put([]dnswire.RR{rrA("die.edu.", 600, "192.0.2.9")}, CredAnswer, false)
	if !gapSeen {
		t.Error("expiry gap not measured for an entry that died across the restart")
	}
	// Extending the restored stale entry revives it to a full OrigTTL.
	if !dst.Extend(dieName, dnswire.TypeA) {
		t.Fatal("Extend failed on a restored stale entry")
	}
	if dst.Get(dieName, dnswire.TypeA) == nil {
		t.Error("extended stale entry still not served live")
	}
}
