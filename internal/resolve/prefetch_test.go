package resolve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/transport"
)

// prefetchFixture builds an async-prefetch resolver with one cached A
// record sitting inside its prefetch window.
func prefetchFixture(t *testing.T, cfg Config) *Resolver {
	t.Helper()
	clk := simclock.NewVirtual(epoch)
	cfg.Clock = clk
	cfg.Cache = cache.New(cache.Config{Clock: clk})
	cfg.Prefetch = true
	cfg.AsyncPrefetch = true
	r := newTestResolver(t, cfg)
	r.cache.Put([]dnswire.RR{rrA("www.test.", 300, "10.1.1.1")}, cache.CredAuthority, false)
	clk.Advance(280 * time.Second) // 20s of 300s left: inside the window
	return r
}

// TestPrefetchDedupsInflight: repeated hits on the same key while its
// prefetch is still running must collapse into one upstream refresh
// (the singleflight property of the worker pool).
func TestPrefetchDedupsInflight(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	blocking := transport.Exchanger(func(context.Context, transport.Addr, *dnswire.Message) (*dnswire.Message, error) {
		calls.Add(1)
		<-gate
		return nil, transport.ErrTimeout
	})
	r := prefetchFixture(t, Config{Transport: blocking, PrefetchWorkers: 1, PrefetchQueue: 8})

	www := dnswire.MustName("www.test.")
	for i := 0; i < 50; i++ {
		if res, err := r.Lookup(nil, www, dnswire.TypeA); err != nil || res == nil {
			t.Fatalf("Lookup #%d = %+v, %v: async mode must serve the hit", i, res, err)
		}
	}
	close(gate)
	r.Close() // drains the single in-flight refresh
	if n := calls.Load(); n != 1 {
		t.Errorf("upstream calls = %d, want 1: in-flight prefetch not deduplicated", n)
	}
}

// TestPrefetchQueueDropsNeverBlock: enqueues beyond the queue bound are
// dropped; the hot path must never block behind a full prefetch queue.
func TestPrefetchQueueDropsNeverBlock(t *testing.T) {
	gate := make(chan struct{})
	blocking := transport.Exchanger(func(context.Context, transport.Addr, *dnswire.Message) (*dnswire.Message, error) {
		<-gate
		return nil, transport.ErrTimeout
	})
	r := prefetchFixture(t, Config{Transport: blocking, PrefetchWorkers: 1, PrefetchQueue: 2})

	// Distinct keys so the inflight dedup cannot absorb them: the worker
	// is gated, the queue holds 2, everything further must drop.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.pf.enqueue(cache.Key{Name: dnswire.MustName("www.test."), Type: dnswire.Type(1000 + i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("enqueue blocked on a full prefetch queue")
	}
	close(gate)
	r.Close()
}

// TestPrefetchHammer drives the worker pool from many goroutines at
// once so the -race pass covers the enqueue/worker/close paths.
func TestPrefetchHammer(t *testing.T) {
	r := prefetchFixture(t, Config{PrefetchWorkers: 2, PrefetchQueue: 4})
	www := dnswire.MustName("www.test.")

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if res, err := r.Lookup(nil, www, dnswire.TypeA); err != nil || res == nil {
					t.Errorf("Lookup = %+v, %v", res, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	r.Close()
	r.Close() // idempotent
}

// TestPrefetchCloseConcurrentWithEnqueue: closing the pool while other
// goroutines are still enqueuing must neither panic (send on closed
// channel) nor deadlock; late enqueues are simply dropped.
func TestPrefetchCloseConcurrentWithEnqueue(t *testing.T) {
	r := prefetchFixture(t, Config{PrefetchWorkers: 1, PrefetchQueue: 2})

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 500; i++ {
				r.pf.enqueue(cache.Key{Name: dnswire.MustName("www.test."), Type: dnswire.Type(g*1000 + i)})
			}
		}(g)
	}
	close(start)
	r.Close()
	wg.Wait()
}
