package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
)

// TestWriteFuzzCorpus regenerates the checked-in FuzzParseStore seed
// corpus under testdata/fuzz/. It is a generator, not a test: run
//
//	WRITE_FUZZ_CORPUS=1 go test -run TestWriteFuzzCorpus ./internal/persist
//
// after changing the store format, and commit the result. The seeds put
// the CI fuzz smoke directly into the recovery-path states that matter:
// torn tails, CRC damage, stale generations, and lying frame lengths.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz seed corpora")
	}

	now := time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC)
	key := cache.Key{Name: dnswire.MustName("corpus.example."), Type: dnswire.TypeA}
	entry, err := encodeEntry(&cache.Entry{
		Key: key,
		RRs: []dnswire.RR{{
			Name:  dnswire.MustName("corpus.example."),
			Class: dnswire.ClassIN,
			TTL:   300,
			Data:  dnswire.NS{Host: dnswire.MustName("ns.corpus.example.")},
		}},
		Cred:     cache.CredAuthority,
		OrigTTL:  5 * time.Minute,
		Expires:  now.Add(5 * time.Minute),
		StoredAt: now,
	})
	if err != nil {
		t.Fatal(err)
	}

	snap := appendHeader(nil, fileHeader{Kind: kindSnapshot, Generation: 9, CreatedAt: now})
	snap = appendFrame(snap, recEntry, entry)
	snap = appendFrame(snap, recCredit, encodeCredit(dnswire.MustName("corpus.example."), 3.5))
	snap = appendFrame(snap, recServer, encodeServer(serverRecord{
		Addr: "192.0.2.53:53", SRTT: 35 * time.Millisecond, RTTVar: 9 * time.Millisecond, Samples: 12,
	}))

	journal := appendHeader(nil, fileHeader{Kind: kindJournal, Generation: 9, CreatedAt: now})
	journal = appendFrame(journal, recEntry, entry)
	journal = appendFrame(journal, recExtend, encodeExtend(key, now.Add(time.Hour)))
	journal = appendFrame(journal, recEvict, appendKey(nil, key))

	seeds := map[string][]byte{
		"snapshot-valid": snap,
		"journal-valid":  journal,
	}

	// Torn tails at hostile offsets: inside the header, inside a frame
	// length prefix, and inside a payload.
	seeds["snapshot-torn-header"] = snap[:headerLen-2]
	seeds["snapshot-torn-frame-len"] = snap[:headerLen+2]
	seeds["journal-torn-payload"] = journal[:len(journal)-5]

	// Single-bit CRC damage in the middle of the first payload.
	crcBad := append([]byte{}, snap...)
	crcBad[headerLen+10] ^= 0x01
	seeds["snapshot-crc-flip"] = crcBad

	// Magic and version damage: must be rejected at the header.
	badMagic := append([]byte{}, snap...)
	badMagic[0] ^= 0xFF
	seeds["snapshot-bad-magic"] = badMagic
	badVersion := append([]byte{}, snap...)
	badVersion[8] = 0xFF
	seeds["snapshot-bad-version"] = badVersion

	// A frame that promises far more payload than the file holds.
	lying := appendHeader(nil, fileHeader{Kind: kindJournal, Generation: 9, CreatedAt: now})
	lying = append(lying, 0x7F, 0xFF, 0xFF, 0xFF) // absurd length prefix
	lying = append(lying, recEntry, 0, 0, 0, 0)
	seeds["journal-lying-length"] = lying

	// An unknown record type between two valid frames: recovery must
	// skip or stop cleanly, not panic.
	unknown := appendHeader(nil, fileHeader{Kind: kindSnapshot, Generation: 9, CreatedAt: now})
	unknown = appendFrame(unknown, recEntry, entry)
	unknown = appendFrame(unknown, 0xEE, []byte{1, 2, 3})
	unknown = appendFrame(unknown, recCredit, encodeCredit(dnswire.MustName("corpus.example."), 1))
	seeds["snapshot-unknown-record"] = unknown

	// Empty payloads for every record type: length-zero decode paths.
	empties := appendHeader(nil, fileHeader{Kind: kindJournal, Generation: 9, CreatedAt: now})
	for _, typ := range []byte{recEntry, recExtend, recEvict, recCredit, recServer} {
		empties = appendFrame(empties, typ, nil)
	}
	seeds["journal-empty-payloads"] = empties

	dir := filepath.Join("testdata", "fuzz", "FuzzParseStore")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, b := range seeds {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
