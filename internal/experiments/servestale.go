package experiments

import (
	"fmt"
	"time"

	"resilientdns/internal/core"
	"resilientdns/internal/sim"
)

// ServeStaleBaseline compares the paper's schemes against the related
// resilience mechanisms that later shipped in production resolvers: the
// Ballani & Francis retain-expired-records proposal the paper discusses
// in §7 (later RFC 8767 serve-stale), and unbound-style prefetch (early
// refresh of hot answers). The paper argues its IRR-focused approach
// keeps DNS semantics intact while achieving similar resilience; this
// experiment quantifies all sides under the 6-hour root+TLD blackout.
func (s *Suite) ServeStaleBaseline() (*Table, error) {
	const dur = 6 * time.Hour
	schemes := []sim.Scheme{
		sim.Vanilla(),
		{Name: "ServeStale(7d)", ServeStale: 7 * 24 * time.Hour},
		{Name: "Prefetch", Prefetch: true},
		sim.Refresh(),
		sim.RefreshRenew(core.ALFU{C: 5, MaxDays: core.DefaultLFUMax(5)}),
	}
	cols := []string{"Trace"}
	for _, sc := range schemes {
		cols = append(cols, sc.Name+" SR")
	}
	t := &Table{
		ID:      "servestale",
		Title:   "Paper's schemes vs the serve-stale baseline (§7), 6h root+TLD attack",
		Columns: cols,
	}
	for _, tr := range s.traces {
		row := []string{tr.Label}
		for _, sc := range schemes {
			res, err := s.runBase(tr, sc, dur)
			if err != nil {
				return nil, err
			}
			cell := pct(res.SRFailRate())
			if sc.ServeStale > 0 {
				cell = fmt.Sprintf("%s (%d stale)", cell, res.ServerStats.StaleAnswers)
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"serve-stale rescues previously seen names but violates TTL semantics (§7)",
		"prefetch keeps hot data records alive but does nothing for cold zones' IRRs",
		"the IRR schemes reach comparable resilience within DNS semantics")
	return t, nil
}
