// Command dnscache runs the paper's resilient caching server over UDP: an
// iterative resolver whose cache implements TTL refresh, credit-based TTL
// renewal of infrastructure records, and the 7-day TTL clamp.
//
// Usage:
//
//	dnscache -listen 127.0.0.1:5301 -root 198.41.0.4:53 \
//	    -refresh -renewal a-lfu -credit 5
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"runtime"
	rtdebug "runtime/debug"
	"strings"
	"sync"
	"syscall"
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/core"
	"resilientdns/internal/debughttp"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/guard"
	"resilientdns/internal/mesh"
	"resilientdns/internal/metrics"
	"resilientdns/internal/persist"
	"resilientdns/internal/resolve"
	"resilientdns/internal/simclock"
	"resilientdns/internal/transport"
)

// jsonLogSink appends one JSON line per finished trace to the query
// log. Observe is called from query, flight, renewal, and prefetch
// goroutines concurrently.
type jsonLogSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	f   *os.File
}

func newJSONLogSink(path string) (*jsonLogSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &jsonLogSink{enc: json.NewEncoder(f), f: f}, nil
}

func (s *jsonLogSink) Observe(ts resolve.TraceSummary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// A full disk should not take the resolver down with it.
	_ = s.enc.Encode(ts)
}

func (s *jsonLogSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// buildSection returns the /debug/stats "build" payload builder: module
// version, VCS revision, Go version, and process uptime — what an
// operator needs to tell which binary a fleet member is actually
// running.
func buildSection(start time.Time) func() any {
	return func() any {
		out := map[string]any{
			"go":       runtime.Version(),
			"uptime_s": int64(time.Since(start) / time.Second),
		}
		if bi, ok := rtdebug.ReadBuildInfo(); ok {
			out["path"] = bi.Main.Path
			if bi.Main.Version != "" {
				out["version"] = bi.Main.Version
			}
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision", "vcs.time", "vcs.modified":
					out[s.Key] = s.Value
				}
			}
		}
		return out
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dnscache:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:5301", "UDP address to serve stub resolvers on")
	roots := flag.String("root", "", "comma-separated root server addresses (host:port), required")
	refresh := flag.Bool("refresh", false, "enable TTL refresh of infrastructure records")
	renewal := flag.String("renewal", "", "TTL renewal policy: lru, lfu, a-lru, a-lfu (empty = off)")
	credit := flag.Float64("credit", 3, "renewal credit c")
	maxTTL := flag.Duration("max-ttl", 7*24*time.Hour, "cache TTL clamp")
	negTTL := flag.Duration("negative-ttl", 0, "negative-answer cache TTL (0 = off)")
	serveStale := flag.Duration("serve-stale", 0, "serve expired records for this long when servers are unreachable (0 = off)")
	prefetch := flag.Bool("prefetch", false, "refresh hot answers in the last 10% of their TTL")
	prefetchAsync := flag.Bool("prefetch-async", false, "run prefetch refreshes on a background worker pool instead of the client's critical path")
	prefetchWorkers := flag.Int("prefetch-workers", 2, "background prefetch workers (with -prefetch-async)")
	prefetchQueue := flag.Int("prefetch-queue", 64, "pending prefetch queue bound; further refreshes are dropped (with -prefetch-async)")
	debugAddr := flag.String("debug-addr", "", "HTTP address for /debug/stats and /debug/queries (empty = off; enables per-query tracing)")
	queryLog := flag.String("query-log", "", "append one JSON line per finished query trace to this file (empty = off; enables per-query tracing)")
	port := flag.Int("upstream-port", 53, "port appended to learned name-server addresses")
	maxInflight := flag.Int("max-inflight", transport.DefaultMaxInflight, "max queries handled concurrently per listener")
	udpReaders := flag.Int("udp-readers", 1, "UDP socket read-loop goroutines (1 = classic single reader)")
	statsEvery := flag.Duration("stats", time.Minute, "stats reporting interval (0 = off)")
	minTimeout := flag.Duration("min-timeout", 200*time.Millisecond, "lower clamp on the adaptive per-attempt upstream timeout")
	maxTimeout := flag.Duration("max-timeout", 3*time.Second, "upper clamp on the adaptive per-attempt upstream timeout")
	quarantine := flag.Duration("quarantine", 5*time.Second, "base quarantine after an upstream failure, doubling per consecutive failure (negative = off)")
	retryBudget := flag.Int("retry-budget", 16, "max upstream attempts one resolution may spend across all failovers (0 = unlimited)")
	noSelection := flag.Bool("no-selection", false, "disable RTT-based upstream selection, quarantine, and retry budget (blind round-robin, for A/B runs)")
	persistDir := flag.String("persist-dir", "", "directory for crash-safe cache persistence: snapshot + journal, replayed on startup (empty = off)")
	snapshotEvery := flag.Duration("snapshot-every", 5*time.Minute, "interval between full cache snapshots when -persist-dir is set (0 = journal only)")
	sweep := flag.Duration("sweep", time.Minute, "interval between background sweeps of expired cache entries (0 = lazy expiry only)")
	clientRPS := flag.Float64("client-rps", 0, "per-client-address UDP query rate limit in queries/s (0 = off)")
	clientBurst := flag.Float64("client-burst", 0, "per-client token-bucket burst depth (0 = 2×-client-rps)")
	slip := flag.Int("slip", 2, "answer every Nth rate-limited UDP query with a minimal TC=1 reply instead of dropping it (0 = never; needs -client-rps)")
	maxClients := flag.Int("max-clients", 65536, "rate-limiter client-slot bound; least recently seen clients are evicted past it")
	overloadCacheOnly := flag.Bool("overload-cache-only", false, "answer queries arriving while all -max-inflight slots are busy from cache/stale data only, instead of dropping them")
	glueBudget := flag.Int("glue-budget", 0, "max out-of-bailiwick name-server address resolutions one query may spend across sibling NS names (0 = default 16, negative = unlimited)")
	meshListen := flag.String("mesh-listen", "", "UDP address for the cooperative resolver mesh (empty = mesh off)")
	meshPeers := flag.String("mesh-peers", "", "comma-separated mesh peer addresses (host:port), with -mesh-listen")
	meshKey := flag.String("mesh-key", "", "shared fleet HMAC key authenticating mesh frames (required with -mesh-listen)")
	meshOwnerRenewal := flag.Bool("mesh-owner-renewal", false, "defer TTL renewals for zones a live mesh peer owns under the rendezvous hash")
	flag.Parse()
	start := time.Now()

	if *roots == "" {
		return fmt.Errorf("-root is required (e.g. -root 198.41.0.4:53)")
	}
	var hints []core.ServerRef
	for i, addr := range strings.Split(*roots, ",") {
		hints = append(hints, core.ServerRef{
			Host: dnswire.MustName(fmt.Sprintf("root%d.hint.", i)),
			Addr: transport.Addr(strings.TrimSpace(addr)),
		})
	}
	policy, err := core.ParsePolicy(*renewal, *credit)
	if err != nil {
		return err
	}
	meshOn := *meshListen != ""
	if meshOn && *meshKey == "" {
		return fmt.Errorf("-mesh-listen requires -mesh-key (the fleet's shared frame-authentication key)")
	}
	if !meshOn && (*meshPeers != "" || *meshOwnerRenewal) {
		return fmt.Errorf("-mesh-peers and -mesh-owner-renewal need -mesh-listen")
	}

	// Open the persistence store before building the server so its change
	// hook observes every cache mutation from the first query on. Deltas
	// only buffer in memory until Recover writes the first checkpoint.
	var store *persist.Store
	var onChange cache.ChangeFunc
	if *persistDir != "" {
		store, err = persist.Open(persist.Options{Dir: *persistDir})
		if err != nil {
			return err
		}
		onChange = store.Observe
	}

	// Tracing is enabled only when something consumes it: the debug
	// endpoint's ring buffer, the query log, or both.
	var ring *resolve.Ring
	if *debugAddr != "" {
		ring = resolve.NewRing(512)
	}
	var qlog *jsonLogSink
	if *queryLog != "" {
		qlog, err = newJSONLogSink(*queryLog)
		if err != nil {
			return err
		}
	}
	var sink resolve.Sink
	if ring != nil && qlog != nil {
		sink = resolve.MultiSink(ring, qlog)
	} else if ring != nil {
		sink = ring
	} else if qlog != nil {
		sink = qlog
	}

	coreCfg := core.Config{
		// The transport timeout matches -max-timeout so the upstream
		// layer's per-attempt deadline (passed via context) is what
		// actually bounds each exchange.
		Transport: &transport.UDPWithTCPFallback{
			UDP: transport.UDP{Timeout: *maxTimeout},
			TCP: transport.TCP{Timeout: 2 * *maxTimeout},
		},
		RootHints:       hints,
		RefreshTTL:      *refresh,
		Renewal:         policy,
		MaxTTL:          *maxTTL,
		NegativeTTL:     *negTTL,
		ServeStale:      *serveStale,
		Prefetch:        *prefetch,
		AsyncPrefetch:   *prefetchAsync,
		PrefetchWorkers: *prefetchWorkers,
		PrefetchQueue:   *prefetchQueue,
		MaxGlueFetches:  *glueBudget,
		TraceSink:       sink,
		AddrMapper: func(a netip.Addr) transport.Addr {
			return transport.Addr(fmt.Sprintf("%s:%d", a, *port))
		},
		Upstream: core.UpstreamConfig{
			Disable:     *noSelection,
			MinTimeout:  *minTimeout,
			MaxTimeout:  *maxTimeout,
			Quarantine:  *quarantine,
			RetryBudget: *retryBudget,
		},
		OnCacheChange: onChange,
	}
	// The mesh node needs the caching server as its backend, and the
	// caching server's hooks need the node: wire the hooks as closures
	// over a node variable assigned before any traffic is served.
	var node *mesh.Node
	meshCounters := &metrics.MeshCounters{}
	if meshOn {
		coreCfg.RenewalOwner = func(zone dnswire.Name) bool { return node.OwnsRenewal(zone) }
		coreCfg.OnRenewed = func(zone dnswire.Name) { node.GossipZone(zone) }
		coreCfg.PeerFetch = func(ctx context.Context, qname dnswire.Name, qtype dnswire.Type) *core.Result {
			msg := node.PeerFetch(ctx, qname, qtype)
			if msg == nil {
				return nil
			}
			return &core.Result{
				RCode:     msg.RCode,
				Answer:    msg.Answer,
				Authority: msg.Authority,
				FromCache: true,
			}
		}
	}
	cs, err := core.NewCachingServer(coreCfg)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Bring the mesh up before the renewal loop and listeners start, so
	// the hook closures above never see a nil node.
	var meshConn *mesh.Conn
	if meshOn {
		meshConn, err = mesh.ListenUDP(*meshListen)
		if err != nil {
			return err
		}
		var peers []string
		for _, p := range strings.Split(*meshPeers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		node, err = mesh.NewNode(mesh.Config{
			Self:         meshConn.LocalAddr(),
			Key:          []byte(*meshKey),
			Peers:        peers,
			Transport:    meshConn,
			Clock:        simclock.Real{},
			Backend:      cs,
			OwnerRenewal: *meshOwnerRenewal,
			Counters:     meshCounters,
		})
		if err != nil {
			meshConn.Close()
			return err
		}
		go func() {
			if err := meshConn.Serve(node); err != nil {
				fmt.Fprintln(os.Stderr, "dnscache: mesh:", err)
			}
		}()
		go func() {
			t := time.NewTicker(mesh.DefaultProbeInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case now := <-t.C:
					node.Tick(now)
				}
			}
		}()
		fmt.Printf("mesh on %s (peers=%d owner-renewal=%v)\n",
			meshConn.LocalAddr(), len(peers), *meshOwnerRenewal)
	}

	if store != nil {
		rep, err := store.Recover(cs)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		go store.Run(ctx, cs, *snapshotEvery, func(err error) {
			fmt.Fprintln(os.Stderr, "dnscache:", err)
		})
	}

	if policy != nil {
		go cs.RunRenewalLoop(ctx)
	}

	if *sweep > 0 {
		// Background sweep: lazy expiry only reclaims entries that get
		// looked up again, so an attack-inflated cache would otherwise hold
		// dead records (and their journal weight) indefinitely.
		go func() {
			t := time.NewTicker(*sweep)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					cs.Cache().SweepExpired()
				}
			}
		}()
	}

	// The guard wraps the frontend only when a guard feature is on, so
	// with the flags at their defaults the serving path is unchanged.
	// Counters always exist: the UDP server still counts sheds and
	// FORMERRs with the guard off.
	guardCounters := &metrics.GuardCounters{}
	guardOn := *clientRPS > 0 || *overloadCacheOnly
	var udpHandler transport.Handler = cs
	udp := &transport.UDPServer{MaxInflight: *maxInflight, Readers: *udpReaders, Counters: guardCounters}
	if guardOn {
		// Handshake-confirmed mesh peers bypass the per-client bucket: a
		// cooperating fleet member must never be rate-limited mid-attack.
		var peerExempt func(netip.Addr) bool
		if meshOn {
			peerExempt = node.IsPeerIP
		}
		g := guard.New(cs, guard.Config{
			ClientRPS:           *clientRPS,
			ClientBurst:         *clientBurst,
			Slip:                *slip,
			MaxClients:          *maxClients,
			CacheOnlyOnOverload: *overloadCacheOnly,
			Counters:            guardCounters,
			PeerExempt:          peerExempt,
		})
		udpHandler = g
		udp.Overload = g.HandleOverload
	}
	udp.Handler = udpHandler
	addr, err := udp.Listen(*listen)
	if err != nil {
		return err
	}
	// TCP is deliberately unguarded: slip pushes clients there, the
	// connection itself provides backpressure, and sources are real.
	tcp := &transport.TCPServer{Handler: cs, MaxInflight: *maxInflight}
	if _, err := tcp.Listen(addr); err != nil {
		udp.Close()
		return err
	}
	fmt.Printf("caching server on %s (udp+tcp, refresh=%v renewal=%s max-inflight=%d selection=%v guard=%v)\n",
		addr, *refresh, *renewal, *maxInflight, !*noSelection, guardOn)

	var debugSrv *http.Server
	if *debugAddr != "" {
		opts := debughttp.Options{
			Stats:      func() any { return cs.Stats() },
			CacheStats: func() any { return cs.CacheStats() },
			Guard:      func() any { return guardCounters.Snapshot() },
			Build:      buildSection(start),
			Latency:    cs.Resolver().LatencySnapshots,
			Ring:       ring,
		}
		if meshOn {
			opts.Mesh = func() any { return meshCounters.Snapshot() }
			opts.Peers = func() any { return node.Snapshot() }
		}
		debugSrv = &http.Server{
			Addr:    *debugAddr,
			Handler: debughttp.New(opts),
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "dnscache: debug endpoint:", err)
			}
		}()
		fmt.Printf("debug endpoint on http://%s/debug/stats\n", *debugAddr)
	}

	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					st := cs.Stats()
					cst := cs.CacheStats()
					gs := guardCounters.Snapshot()
					fmt.Printf("in=%d out=%d coalesced=%d failed=%d renewals=%d retries=%d quarantine-skips=%d budget-exhausted=%d cached: zones=%d records=%d guard: limited=%d slips=%d shed=%d cache-only=%d formerr=%d\n",
						st.QueriesIn, st.QueriesOut, st.Coalesced, st.Failed, st.Renewals,
						st.Retries, st.QuarantineSkips, st.BudgetExhausted, cst.Zones, cst.Records,
						gs.RateLimited, gs.Slips, gs.Shed, gs.CacheOnly, gs.FormErr)
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Graceful drain: stop the renewal loop, then close each listener —
	// Close waits for every in-flight handler goroutine to finish.
	fmt.Println("shutting down: draining in-flight queries")
	cancel()
	if meshConn != nil {
		_ = meshConn.Close()
	}
	udp.Close()
	tcp.Close()
	if debugSrv != nil {
		_ = debugSrv.Close()
	}
	// Stop the background prefetch workers (drains queued refreshes) so
	// the final stats and query log include their last traces.
	cs.Close()
	if qlog != nil {
		if err := qlog.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dnscache:", err)
		}
	}

	// Final snapshot after the drain, so the checkpoint includes the last
	// in-flight answers and the next start replays a complete cache.
	if store != nil {
		if err := store.Checkpoint(cs); err != nil {
			fmt.Fprintln(os.Stderr, "dnscache:", err)
		}
		if err := store.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dnscache:", err)
		}
	}

	st := cs.Stats()
	cst := cs.CacheStats()
	fmt.Printf("final: in=%d out=%d coalesced=%d failed=%d renewals=%d retries=%d cached: zones=%d records=%d stale=%d\n",
		st.QueriesIn, st.QueriesOut, st.Coalesced, st.Failed, st.Renewals, st.Retries,
		cst.Zones, cst.Records, cst.StaleEntries)
	if gs := guardCounters.Snapshot(); gs.Allowed+gs.RateLimited+gs.Shed+gs.CacheOnly+gs.FormErr+gs.PeerExempt > 0 {
		fmt.Printf("guard: allowed=%d limited=%d slips=%d shed=%d cache-only=%d (miss=%d) formerr=%d evicted=%d peer-exempt=%d\n",
			gs.Allowed, gs.RateLimited, gs.Slips, gs.Shed, gs.CacheOnly, gs.CacheOnlyMiss, gs.FormErr, gs.ClientsEvicted, gs.PeerExempt)
	}
	if meshOn {
		ms := meshCounters.Snapshot()
		fmt.Printf("mesh: frames-in=%d bad-mac=%d unconfirmed=%d pings=%d ping-failures=%d irr-push sent=%d recv=%d ingested=%d fetch sent=%d hits=%d served=%d renewals-deferred=%d\n",
			ms.FramesIn, ms.FramesBadMAC, ms.FramesUnconfirmed, ms.PingsSent, ms.PingFailures,
			ms.IRRPushesSent, ms.IRRPushesReceived, ms.IRRIngested,
			ms.FetchesSent, ms.FetchHits, ms.FetchesServed, st.RenewalDeferred)
	}
	if store != nil {
		ps := store.Counters()
		fmt.Printf("persist: snapshots=%d (%d records, %d bytes) journal=%d records (%d bytes) recoveries=%d replayed=%d dropped=%d\n",
			ps.Snapshots, ps.SnapshotRecords, ps.SnapshotBytes,
			ps.JournalRecords, ps.JournalBytes, ps.Recoveries, ps.ReplayedRecords, ps.DroppedRecords)
	}
	fmt.Println("drained")
	return nil
}
