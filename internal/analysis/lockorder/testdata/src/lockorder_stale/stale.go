// Package lockorder_stale exercises stale-suppression detection: the
// inversion was fixed, the directive stayed behind.
package lockorder_stale

import "sync"

var muA, muB sync.Mutex

// Consistent now takes A before B like everyone else; the directive
// suppresses nothing and must be deleted.
func Consistent() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock() //dnslint:ignore lockorder legacy suppression // want "stale"
	muB.Unlock()
}
