// DNSSEC chain: generate a fully signed hierarchy, resolve with a
// validating caching server, and show that (a) tampered data is rejected
// and (b) the DS/DNSKEY infrastructure records flow through the same
// refresh/renewal caching machinery as NS and glue — the paper's §6
// extension.
//
//	go run ./examples/dnssecchain
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"resilientdns/internal/core"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/simnet"
	"resilientdns/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dnssecchain:", err)
		os.Exit(1)
	}
}

func run() error {
	params := topology.DefaultParams(21)
	params.NumTLDs = 4
	params.SLDsPerTLD = 15
	params.Signed = true
	tree, err := topology.Generate(params)
	if err != nil {
		return err
	}
	fmt.Printf("generated and signed %d zones (Ed25519, DS chain to the root)\n",
		len(tree.AllZoneNames()))

	clock := simclock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	network := simnet.New(clock, 1)
	tree.Install(network)

	cs, err := core.NewCachingServer(core.Config{
		Transport:      network,
		Clock:          clock,
		RootHints:      tree.RootHints,
		RefreshTTL:     true,
		Renewal:        core.ALFU{C: 5, MaxDays: 50},
		ValidateDNSSEC: true,
		TrustAnchors:   tree.TrustAnchors,
	})
	if err != nil {
		return err
	}

	ctx := context.Background()
	name := tree.QueryableNames()[0]
	res, err := cs.Resolve(ctx, name.Name, dnswire.TypeA)
	if err != nil {
		return err
	}
	fmt.Printf("\nvalidated answer: %-36s -> %s\n", name.Name, res.Answer[len(res.Answer)-1].Data)
	if secure, _ := cs.SecureZone(name.Zone); secure {
		fmt.Printf("zone %s proven secure via the DS chain\n", name.Zone)
	}

	// The DNSSEC records are cached as infrastructure, exactly like NS
	// and glue — the paper's §6 point.
	for _, typ := range []dnswire.Type{dnswire.TypeNS, dnswire.TypeDS, dnswire.TypeDNSKEY} {
		if e := cs.Cache().Peek(name.Zone, typ); e != nil {
			fmt.Printf("cached %-7s for %-24s infra=%v ttl=%v\n", typ, name.Zone, e.Infra, e.OrigTTL)
		}
	}

	// Now tamper: swap the record at the authoritative server without
	// re-signing. A validating resolver must refuse the answer.
	tampered, err := topology.Generate(params) // identical tree...
	if err != nil {
		return err
	}
	victim := tampered.Zones[name.Zone]
	victim.Zone.MustAdd(dnswire.RR{
		Name: name.Name, Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.CNAME{Target: dnswire.MustName("evil.attacker.example.")},
	})
	network2 := simnet.New(clock, 1)
	tampered.Install(network2)
	cs2, err := core.NewCachingServer(core.Config{
		Transport:      network2,
		Clock:          clock,
		RootHints:      tampered.RootHints,
		ValidateDNSSEC: true,
		TrustAnchors:   tampered.TrustAnchors,
	})
	if err != nil {
		return err
	}
	if _, err := cs2.Resolve(ctx, name.Name, dnswire.TypeA); err != nil {
		fmt.Printf("\ntampered zone rejected by validation:\n  %v\n", err)
	} else {
		fmt.Println("\nWARNING: tampered data was accepted!")
	}
	return nil
}
