// Package ctxdeadline_chain is a failing fixture: the deadline
// obligation propagates through the call graph (the NeedsDeadline
// fact), so an unbounded context is caught where it enters the chain,
// not just at the exchange itself.
package ctxdeadline_chain

import "context"

// Transport mirrors the resilientdns transport.Transport shape.
type Transport interface {
	Exchange(ctx context.Context, server string, query []byte) ([]byte, error)
}

// refetch forwards its context straight to the exchange: it inherits
// the deadline obligation.
func refetch(ctx context.Context, tr Transport) {
	tr.Exchange(ctx, "10.0.0.1", nil)
}

// RenewLoop hands refetch an unbounded context — flagged one hop away
// from the exchange, at the spawn site.
func RenewLoop(tr Transport) {
	go refetch(context.Background(), tr) // want "context without a deadline"
}

// hop adds a second link; the obligation still reaches Deep.
func hop(ctx context.Context, tr Transport) { refetch(ctx, tr) }

// Deep feeds TODO through two hops.
func Deep(tr Transport) {
	hop(context.TODO(), tr) // want "context without a deadline"
}

// Bounded callers of the same chain are fine.
func Renew(ctx context.Context, tr Transport) {
	cctx, cancel := context.WithTimeout(ctx, 1)
	defer cancel()
	refetch(cctx, tr)
}
