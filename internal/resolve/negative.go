package resolve

import (
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
)

// negEntry caches a negative resolution outcome.
type negEntry struct {
	rcode dnswire.RCode
	// soa is the negative answer's SOA RRset (RFC 2308); replies served
	// from the negative cache carry it in their authority section so
	// downstream stubs can negative-cache the outcome themselves.
	soa     []dnswire.RR
	expires time.Time
}

// negativeStore remembers a negative outcome when negative caching is on.
// soa may be nil (the upstream answer carried no SOA).
func (r *Resolver) negativeStore(qname dnswire.Name, qtype dnswire.Type, rcode dnswire.RCode, soa []dnswire.RR) {
	if r.cfg.NegativeTTL <= 0 {
		return
	}
	r.negMu.Lock()
	defer r.negMu.Unlock()
	if r.negative == nil {
		r.negative = make(map[cache.Key]negEntry)
	}
	r.negative[cache.Key{Name: qname, Type: qtype}] = negEntry{
		rcode:   rcode,
		soa:     soa,
		expires: r.cfg.Clock.Now().Add(r.cfg.NegativeTTL),
	}
}

// negativeLookup returns a cached negative outcome, if one is live, along
// with its SOA. The SOA's TTL is clamped to the entry's remaining
// lifetime so a downstream negative cache expires no later than ours.
func (r *Resolver) negativeLookup(qname dnswire.Name, qtype dnswire.Type, now time.Time) (dnswire.RCode, []dnswire.RR, bool) {
	if r.cfg.NegativeTTL <= 0 {
		return 0, nil, false
	}
	r.negMu.Lock()
	defer r.negMu.Unlock()
	if r.negative == nil {
		return 0, nil, false
	}
	key := cache.Key{Name: qname, Type: qtype}
	e, ok := r.negative[key]
	if !ok {
		return 0, nil, false
	}
	if !e.expires.After(now) {
		delete(r.negative, key)
		return 0, nil, false
	}
	var soa []dnswire.RR
	if len(e.soa) > 0 {
		remaining := remainingSeconds(e.expires, now)
		soa = make([]dnswire.RR, len(e.soa))
		for i, rr := range e.soa {
			if rr.TTL > remaining {
				rr.TTL = remaining
			}
			soa[i] = rr
		}
	}
	return e.rcode, soa, true
}

// remainingSeconds mirrors cache.Entry.RemainingTTL: seconds until
// expiry, at least 1 for a still-live entry.
func remainingSeconds(expires, now time.Time) uint32 {
	d := expires.Sub(now)
	if d <= 0 {
		return 0
	}
	secs := int64(d / time.Second)
	if secs == 0 {
		secs = 1
	}
	return uint32(secs)
}

// negativeSOA extracts the SOA RRset a negative response carries in its
// authority section, with the TTL clamped per RFC 2308 to
// min(TTL, SOA.Minimum) — the duration the outcome may be negative-cached
// — and additionally to the resolver's own NegativeTTL when set.
func (r *Resolver) negativeSOA(resp *dnswire.Message) []dnswire.RR {
	var out []dnswire.RR
	for _, rr := range resp.Authority {
		soa, ok := rr.Data.(dnswire.SOA)
		if !ok {
			continue
		}
		if rr.TTL > soa.Minimum {
			rr.TTL = soa.Minimum
		}
		if ttl := r.cfg.NegativeTTL; ttl > 0 {
			if clamp := uint32(ttl / time.Second); rr.TTL > clamp {
				rr.TTL = clamp
			}
		}
		out = append(out, rr)
	}
	return out
}
