package core

import (
	"context"
	"testing"
	"time"

	"resilientdns/internal/attack"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/simnet"
	"resilientdns/internal/transport"
)

// The upstream selector's own unit tests (ordering, quarantine, backoff,
// timeouts, the retry-budget context) live with the selector in
// internal/resolve. The tests here exercise the upstream behaviour end to
// end through the CachingServer policy shell.

// TestNoCreditOnTotalFailure is the regression test for the
// credit-accounting bug: queryZone used to award renewal credit before
// any exchange was attempted, so a zone whose servers were all down still
// earned credit toward renewing IRRs it could never refetch.
func TestNoCreditOnTotalFailure(t *testing.T) {
	f := newFixture(t, Config{RefreshTTL: true, Renewal: LRU{C: 3}})
	f.resolveA(t, "www.ucla.edu.") // warm: ucla.edu earns credit legitimately
	f.cs.renewMu.Lock()
	before := f.cs.credits[dnswire.MustName("ucla.edu.")]
	f.cs.renewMu.Unlock()
	if before == 0 {
		t.Fatal("warm-up resolution earned no credit")
	}

	f.net.SetAttack(attack.Schedule{attack.NewWindow(
		f.clock.Now(), 24*time.Hour, dnswire.MustName("ucla.edu."))})
	f.clock.Advance(10 * time.Minute) // www A (300s) expired; ucla IRR alive
	if _, err := f.cs.Resolve(context.Background(), dnswire.MustName("www.ucla.edu."), dnswire.TypeA); err == nil {
		t.Fatal("resolution succeeded with every ucla server down")
	}

	f.cs.renewMu.Lock()
	after := f.cs.credits[dnswire.MustName("ucla.edu.")]
	f.cs.renewMu.Unlock()
	if after > before {
		t.Errorf("credit grew from %v to %v on a total failure", before, after)
	}
}

// killHost replaces a fixture host with a handler that never answers, so
// queries to it time out.
func killHost(f *fixture, addr, zone string) {
	f.net.Register(&simnet.Host{
		Addr:    transport.Addr(addr),
		Zone:    dnswire.MustName(zone),
		Handler: transport.HandlerFunc(func(*dnswire.Message) *dnswire.Message { return nil }),
	})
}

// TestQuarantineSkipAndRecovery covers the upstream behaviour end to
// end: a failing server is quarantined and skipped while healthy peers
// exist, and remains reachable by failover once its peers die too.
func TestQuarantineSkipAndRecovery(t *testing.T) {
	f := newFixture(t, Config{})
	f.resolveA(t, "www.ucla.edu.")
	killHost(f, "10.0.2.1", "ucla.edu.") // ns1.ucla.edu stops answering

	// Expire the cached A record but not the ucla IRRs, then resolve: the
	// dead server (first in input order) fails once and is quarantined.
	f.clock.Advance(10 * time.Minute)
	f.resolveA(t, "www.ucla.edu.")
	st := f.cs.Stats()
	if st.QueriesOutFailed == 0 {
		t.Fatal("dead server was never tried")
	}
	failed := st.QueriesOutFailed

	// A different miss in the same zone, inside the quarantine window: the
	// dead server must be skipped, not retried.
	f.resolveA(t, "ftp.ucla.edu.") // NXDOMAIN; must hit only the live server
	st = f.cs.Stats()
	if st.QueriesOutFailed != failed {
		t.Errorf("QueriesOutFailed grew to %d inside the quarantine window", st.QueriesOutFailed)
	}
	if st.QuarantineSkips == 0 {
		t.Error("quarantined server was not counted as skipped")
	}

	// After the window lapses, the failure's RTT penalty still ranks the
	// proven-fast live server first, so the dead one stays un-probed.
	f.clock.Advance(time.Minute)
	f.resolveA(t, "mail.ucla.edu.")
	if st := f.cs.Stats(); st.QueriesOutFailed != failed {
		t.Error("penalised server probed first despite a healthy fast peer")
	}

	// Recovery: revive the first server, kill the preferred one. Failover
	// must walk past the fresh failure to the revived server and succeed.
	f.reviveUclaHost("10.0.2.1")
	killHost(f, "10.0.2.2", "ucla.edu.")
	res := f.resolveA(t, "smtp.ucla.edu.")
	if res.RCode != dnswire.RCodeNXDomain {
		t.Errorf("RCode = %v, want NXDOMAIN from the revived server", res.RCode)
	}
	if st := f.cs.Stats(); st.QueriesOutFailed != failed+1 {
		t.Errorf("QueriesOutFailed = %d, want %d (one failure on the newly dead server)", st.QueriesOutFailed, failed+1)
	}
}

// TestSRTTSelectionPrefersProvenServer: a server that only ever fails
// accumulates a timeout-sized RTT penalty, so selection keeps leading
// with the live server long after every quarantine window has lapsed.
func TestSRTTSelectionPrefersProvenServer(t *testing.T) {
	f := newFixture(t, Config{})
	f.resolveA(t, "www.ucla.edu.")
	killHost(f, "10.0.2.1", "ucla.edu.")

	f.clock.Advance(10 * time.Minute)
	f.resolveA(t, "www.ucla.edu.") // one failure on the dead server
	failed := f.cs.Stats().QueriesOutFailed

	// Long gaps (quarantine always lapsed): the dead server's penalised
	// SRTT still ranks it behind the answering one.
	for i := 0; i < 3; i++ {
		f.clock.Advance(10 * time.Minute)
		f.resolveA(t, "www.ucla.edu.")
	}
	if st := f.cs.Stats(); st.QueriesOutFailed != failed {
		t.Errorf("QueriesOutFailed = %d, want %d: selection kept probing the dead server first", st.QueriesOutFailed, failed)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	// Budget 3 covers the initial root → edu → ucla walk exactly.
	f := newFixture(t, Config{Upstream: UpstreamConfig{RetryBudget: 3}})
	f.resolveA(t, "www.ucla.edu.")

	// Everything goes down; the cached A expires. Without a budget the
	// resolver would bounce between ucla and edu until MaxReferrals,
	// burning an attempt on every server each round; with budget 3 it
	// stops after three.
	f.net.SetAttack(attack.Schedule{attack.NewWindow(f.clock.Now(), 24*time.Hour,
		dnswire.Root, dnswire.MustName("edu."), dnswire.MustName("ucla.edu."))})
	f.clock.Advance(10 * time.Minute)
	before := f.cs.Stats().QueriesOut
	if _, err := f.cs.Resolve(context.Background(), dnswire.MustName("www.ucla.edu."), dnswire.TypeA); err == nil {
		t.Fatal("resolution succeeded with the whole hierarchy down")
	}
	st := f.cs.Stats()
	if st.BudgetExhausted == 0 {
		t.Error("budget exhaustion not recorded")
	}
	if spent := st.QueriesOut - before; spent > 3 {
		t.Errorf("resolution spent %d attempts, budget was 3", spent)
	}
}

// TestSpoofedQuestionRejected is the regression test for accepting
// responses on ID match alone: a response with the right ID but the wrong
// question must be treated like a mismatched ID.
func TestSpoofedQuestionRejected(t *testing.T) {
	spoofed := 0
	tr := transport.Exchanger(func(_ context.Context, _ transport.Addr, q *dnswire.Message) (*dnswire.Message, error) {
		spoofed++
		resp := dnswire.NewQuery(q.ID, dnswire.MustName("evil.example."), dnswire.TypeA)
		resp.Flags.Response = true
		return resp, nil
	})
	cs, err := NewCachingServer(Config{
		Transport: tr,
		Clock:     simclock.NewVirtual(epoch),
		RootHints: []ServerRef{{Host: dnswire.MustName("a.root-servers.net."), Addr: "10.0.0.1"}},
	})
	if err != nil {
		t.Fatalf("NewCachingServer: %v", err)
	}
	if _, err := cs.Resolve(context.Background(), dnswire.MustName("www.ucla.edu."), dnswire.TypeA); err == nil {
		t.Fatal("resolution accepted a response that does not echo the question")
	}
	if spoofed == 0 {
		t.Fatal("spoofing transport never invoked")
	}
	if st := cs.Stats(); st.QueriesOutFailed == 0 {
		t.Error("spoofed response not counted as a failed exchange")
	}
}

// TestStaleCNAMEChainChased is the regression test for staleAnswer
// returning a dangling stale CNAME: the chain must be followed through
// the stale cache to the terminal address records.
func TestStaleCNAMEChainChased(t *testing.T) {
	f := newFixture(t, Config{ServeStale: 24 * time.Hour})
	f.resolveA(t, "alias.ucla.edu.") // caches alias CNAME www.com. + its A

	// Take the whole hierarchy down and let every record expire: live and
	// stale iteration both fail, leaving staleAnswer as the last resort.
	f.net.SetAttack(attack.Schedule{attack.NewWindow(f.clock.Now(), 48*time.Hour,
		dnswire.Root, dnswire.MustName("edu."), dnswire.MustName("com."), dnswire.MustName("ucla.edu."))})
	f.clock.Advance(10 * time.Minute) // alias CNAME (300s) and www.com A (600s) expired

	res, err := f.cs.Resolve(context.Background(), dnswire.MustName("alias.ucla.edu."), dnswire.TypeA)
	if err != nil {
		t.Fatalf("stale resolution failed: %v", err)
	}
	var haveCNAME, haveA bool
	for _, rr := range res.Answer {
		if rr.TTL != staleServeTTL {
			t.Errorf("stale RR served with TTL %d, want %d", rr.TTL, staleServeTTL)
		}
		switch rr.Type() {
		case dnswire.TypeCNAME:
			haveCNAME = true
		case dnswire.TypeA:
			haveA = true
			if rr.Data.String() != "10.8.8.8" {
				t.Errorf("stale A = %s, want 10.8.8.8", rr.Data)
			}
		}
	}
	if !haveCNAME || !haveA {
		t.Fatalf("stale answer = %v, want CNAME chain chased to its A record", res.Answer)
	}
	if st := f.cs.Stats(); st.StaleAnswers < 2 {
		t.Errorf("StaleAnswers = %d, want both chain entries counted", st.StaleAnswers)
	}
}
