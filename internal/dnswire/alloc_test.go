package dnswire

// Steady-state allocation budgets for the wire hot path. These are hard
// ceilings, not measurements: if a change pushes Pack or Unpack back
// above them, the test fails and the allocation has to be justified here.

import "testing"

// TestAppendPackSteadyStateAllocs: packing into a caller-reused buffer
// must not allocate at all in steady state — the pooled Packer reuses its
// compression map and the destination has capacity.
func TestAppendPackSteadyStateAllocs(t *testing.T) {
	msg := sampleMessage()
	buf := make([]byte, 0, 1024)
	// Warm the packer pool and grow the compression map once.
	if _, err := msg.AppendPack(buf); err != nil {
		t.Fatalf("AppendPack: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := msg.AppendPack(buf); err != nil {
			t.Fatalf("AppendPack: %v", err)
		}
	})
	if allocs > 0 {
		t.Errorf("AppendPack into reused buffer allocates %.1f/op, want 0", allocs)
	}
}

// TestPackSteadyStateAllocs: plain Pack owns its output, so exactly one
// allocation — the returned wire — is the budget.
func TestPackSteadyStateAllocs(t *testing.T) {
	msg := sampleMessage()
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := msg.Pack(); err != nil {
			t.Fatalf("Pack: %v", err)
		}
	})
	if allocs > 1 {
		t.Errorf("Pack allocates %.1f/op, want ≤ 1 (the returned wire)", allocs)
	}
}

// TestUnpackSteadyStateAllocs: arena-style Unpack pays one copy of the
// wire, one slice per section, one Message, and one string per distinct
// name — repeated names hit the per-message offset cache. The sample
// message (1 question, 1 answer, 2 authority, 2 additional, 5 distinct
// names) must stay within that budget.
func TestUnpackSteadyStateAllocs(t *testing.T) {
	msg := sampleMessage()
	wire, err := msg.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := Unpack(wire); err != nil {
			t.Fatalf("Unpack: %v", err)
		}
	})
	// Budget: arena copy + Message + 4 section slices + 5 name strings +
	// per-RR Data boxing. Anything above 16 means a field is no longer
	// arena-sliced or the name cache stopped hitting.
	if allocs > 16 {
		t.Errorf("Unpack allocates %.1f/op, want ≤ 16", allocs)
	}
}
