package resolve

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/transport"
)

// Engine is the unified fetch engine: the one place in the process that
// talks to authoritative servers. Every fetch — client-driven iteration,
// prefetch, renewal refetch, missing-glue resolution — goes through
// Fetch, so query-ID allocation, server selection, per-attempt timeouts,
// the retry budget, and response validation are owned by exactly one
// code path (the single-exchange-path invariant, enforced by the
// `onepath` dnslint analyzer).
type Engine struct {
	transport      transport.Transport
	clock          simclock.Clock
	advertiseEDNS0 bool
	counters       *Counters
	// upstream holds the per-server selection state (RTT estimates,
	// quarantine); it has its own internal lock, taken only for short
	// state reads/updates and never across an exchange.
	upstream *upstream
	// qid is the outgoing query-ID counter: seeded from crypto/rand and
	// advanced atomically, so concurrent queries never share an ID and
	// the sequence does not restart at a guessable value.
	qid atomic.Uint32
}

// newEngine builds the fetch engine, seeding the query-ID sequence.
func newEngine(cfg Config, counters *Counters) (*Engine, error) {
	e := &Engine{
		transport:      cfg.Transport,
		clock:          cfg.Clock,
		advertiseEDNS0: cfg.AdvertiseEDNS0,
		counters:       counters,
		upstream:       newUpstream(cfg.Upstream),
	}
	var seed [4]byte
	if _, err := crand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("resolve: seeding query IDs: %w", err)
	}
	e.qid.Store(binary.LittleEndian.Uint32(seed[:]))
	return e, nil
}

// nextQID returns a fresh 16-bit query ID.
func (e *Engine) nextQID() uint16 { return uint16(e.qid.Add(1)) }

// Fetch sends (qname, qtype) to servers through the failover loop and
// returns the first validated response. The query is built here — ID
// allocation and EDNS0 advertisement included — so callers never touch
// the wire layer directly.
func (e *Engine) Fetch(ctx context.Context, tr *Trace, servers []transport.Addr, qname dnswire.Name, qtype dnswire.Type) (*dnswire.Message, error) {
	if len(servers) == 0 {
		return nil, transport.ErrServerUnreachable
	}
	q := dnswire.NewQuery(e.nextQID(), qname, qtype)
	if e.advertiseEDNS0 {
		q.SetEDNS0(dnswire.DefaultEDNS0PayloadSize)
	}
	return e.exchangeFailover(ctx, tr, servers, q)
}

// exchangeFailover tries each of servers in the upstream layer's
// preferred order (healthy by ascending SRTT, then quarantined) until one
// returns a validated response. RTT estimates, quarantine state, and the
// retry budget are shared across every fetch path. A cancelled client
// must not keep burning upstream attempts, so the loop re-checks ctx
// before every attempt.
func (e *Engine) exchangeFailover(ctx context.Context, tr *Trace, servers []transport.Addr, q *dnswire.Message) (*dnswire.Message, error) {
	ordered, skipped := e.upstream.order(servers, e.clock.Now())
	if skipped > 0 {
		e.counters.QuarantineSkips.Add(uint64(skipped))
	}
	var lastErr error
	for i, addr := range ordered {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			return nil, lastErr
		}
		if !takeAttempt(ctx) {
			e.counters.BudgetExhausted.Add(1)
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last attempt: %v)", errBudgetExhausted, lastErr)
			}
			return nil, errBudgetExhausted
		}
		if i > 0 {
			e.counters.Retries.Add(1)
		}
		e.counters.QueriesOut.Add(1)
		resp, err := e.exchange(ctx, tr, addr, q)
		if err != nil {
			e.counters.QueriesOutFailed.Add(1)
			lastErr = err
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// exchange performs one upstream attempt against addr: it applies the
// per-attempt deadline derived from the server's RTT history, validates
// the response (ID and question echo), and folds the outcome back into
// the server's selection state and the trace.
func (e *Engine) exchange(ctx context.Context, tr *Trace, addr transport.Addr, q *dnswire.Message) (*dnswire.Message, error) {
	if t := e.upstream.attemptTimeout(addr); t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	start := e.clock.Now()
	resp, err := e.transport.Exchange(ctx, addr, q) //dnslint:ignore onepath the fetch engine is the one sanctioned exchange path
	if err == nil && resp.ID != q.ID {
		err = fmt.Errorf("resolve: mismatched response ID from %s", addr)
	}
	if err == nil && !dnswire.EchoesQuestion(q, resp) {
		err = fmt.Errorf("resolve: response from %s does not echo the question", addr)
	}
	end := e.clock.Now()
	tr.RecordAttempt(addr, end.Sub(start), err)
	if err != nil {
		e.upstream.observeFailure(addr, end)
		return nil, err
	}
	e.upstream.observeSuccess(addr, end.Sub(start))
	return resp, nil
}
