package transport

import "sync"

// readBufSize is the size of pooled wire buffers: large enough for the
// biggest possible DNS message (the TCP length prefix is 16-bit), so one
// pool serves reads and packing scratch alike.
const readBufSize = 64 * 1024

// bufPool recycles wire buffers across reads, packs, and exchanges.
//
// Ownership rule: a pooled buffer may be returned the moment no wire
// bytes in it are needed — dnswire.Unpack makes its own private copy of
// the wire (the Message never aliases the read buffer), and a packed
// response is done with its scratch once the socket write returns. Every
// getBuf is paired with a putBuf on all exit paths; a buffer must never
// be put back while an Unpack or socket write on it is still in flight.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, readBufSize)
	return &b
}}

// getBuf leases a readBufSize-capacity buffer from the pool. The pool
// stores pointers so leasing does not re-allocate the slice header.
func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

// putBuf returns a leased buffer. The contents need not be cleared: DNS
// wire parsing is length-driven, so stale bytes past the next read's
// length are never interpreted.
func putBuf(b *[]byte) { bufPool.Put(b) }
