// Package persist implements crash-safe on-disk persistence for the
// caching server, so a crash, OOM-kill, or redeploy during an attack does
// not reset the cache to vanilla-DNS behaviour. The paper's whole defense
// is cached state: infrastructure RRs surviving a root/TLD blackout. This
// package makes that state survive the process.
//
// The store is a classic snapshot + journal pair in one directory:
//
//   - snapshot.dat — a periodic full dump of the cache (live and stale
//     entries), renewal credit, and upstream selection state. Written to a
//     temp file, fsynced, and atomically renamed, so a crash mid-write
//     never damages the previous snapshot.
//   - journal.dat — an append-only log of cache deltas (Put/Extend/Evict)
//     since the snapshot, fed by the cache's OnChange hook and flushed on
//     a short interval. A crash loses at most one flush interval of
//     deltas.
//
// Both files carry a generation number. A journal is replayed only when
// its generation matches the snapshot's: each snapshot rotates the journal
// to its own generation, folding the old journal's contents into the
// snapshot (compaction). A crash between the two steps leaves a
// mismatched pair, and the stale journal is simply skipped — replaying it
// against the newer snapshot could rewind entries.
//
// Records are length-prefixed, CRC32-checksummed, and versioned; RRsets
// are encoded in DNS wire format via dnswire. Recovery is tolerant by
// construction: a torn or corrupt tail truncates the replay at the last
// good record and never aborts startup, and individual records that fail
// validation are dropped and counted.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
)

// File format constants. The magic's trailing byte doubles as a coarse
// format version; formatVersion tracks record-level revisions within it.
const (
	magic         = "RDNSPST\x01"
	formatVersion = 1

	kindSnapshot byte = 1
	kindJournal  byte = 2

	// headerLen is the fixed file header: magic(8) + version(2) + kind(1)
	// + generation(8) + created-at unix-nanos(8).
	headerLen = 8 + 2 + 1 + 8 + 8

	// frameOverhead is the per-record framing: type(1) + length(4) +
	// crc32(4).
	frameOverhead = 1 + 4 + 4

	// maxRecordLen bounds one record's payload. A single RRset message
	// tops out at 64 KiB; anything larger is corruption, not data.
	maxRecordLen = 1 << 20
)

// Record types.
const (
	// recEntry is a full cache entry: every snapshot record, and the
	// journal's Put delta.
	recEntry byte = 1
	// recExtend is a journal delta: (key, new absolute expiry).
	recExtend byte = 2
	// recEvict is a journal delta: (key).
	recEvict byte = 3
	// recCredit is a snapshot-only record: (zone, renewal credit).
	recCredit byte = 4
	// recServer is a snapshot-only record: one upstream server's selection
	// state.
	recServer byte = 5
)

// errCorrupt reports a record that failed structural validation. Decoders
// return it (never panic) so recovery can drop the record and carry on.
var errCorrupt = errors.New("persist: corrupt record")

// entryRecord is the decoded form of a recEntry payload.
type entryRecord struct {
	Cred     cache.Credibility
	Infra    bool
	Origin   cache.Origin
	OrigTTL  time.Duration
	Expires  time.Time
	StoredAt time.Time
	RRs      []dnswire.RR
}

// fileHeader describes a store file.
type fileHeader struct {
	Kind       byte
	Generation uint64
	CreatedAt  time.Time
}

// appendHeader serialises a file header.
func appendHeader(b []byte, h fileHeader) []byte {
	b = append(b, magic...)
	b = binary.BigEndian.AppendUint16(b, formatVersion)
	b = append(b, h.Kind)
	b = binary.BigEndian.AppendUint64(b, h.Generation)
	b = binary.BigEndian.AppendUint64(b, uint64(h.CreatedAt.UnixNano()))
	return b
}

// parseHeader reads a file header, returning the offset of the first
// record.
func parseHeader(b []byte) (fileHeader, int, error) {
	if len(b) < headerLen {
		return fileHeader{}, 0, fmt.Errorf("%w: short header", errCorrupt)
	}
	if string(b[:8]) != magic {
		return fileHeader{}, 0, fmt.Errorf("%w: bad magic", errCorrupt)
	}
	if v := binary.BigEndian.Uint16(b[8:10]); v != formatVersion {
		return fileHeader{}, 0, fmt.Errorf("persist: unsupported format version %d", v)
	}
	h := fileHeader{
		Kind:       b[10],
		Generation: binary.BigEndian.Uint64(b[11:19]),
		CreatedAt:  time.Unix(0, int64(binary.BigEndian.Uint64(b[19:27]))),
	}
	if h.Kind != kindSnapshot && h.Kind != kindJournal {
		return fileHeader{}, 0, fmt.Errorf("%w: unknown file kind %d", errCorrupt, h.Kind)
	}
	return h, headerLen, nil
}

// appendFrame wraps one record payload in the length+checksum framing.
func appendFrame(b []byte, typ byte, payload []byte) []byte {
	b = append(b, typ)
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

// frame is one raw record read back from a file.
type frame struct {
	typ     byte
	payload []byte
}

// readFrames parses consecutive frames from b. It returns the frames that
// were fully intact, the offset just past the last good frame, and whether
// the remainder was torn or corrupt (short frame, oversized length, or
// checksum mismatch). A torn tail is expected after a crash and must never
// abort recovery — the caller truncates there and continues.
func readFrames(b []byte) (frames []frame, good int, torn bool) {
	off := 0
	for off < len(b) {
		if len(b)-off < frameOverhead {
			return frames, off, true
		}
		typ := b[off]
		n := int(binary.BigEndian.Uint32(b[off+1 : off+5]))
		sum := binary.BigEndian.Uint32(b[off+5 : off+9])
		if n > maxRecordLen || len(b)-off-frameOverhead < n {
			return frames, off, true
		}
		payload := b[off+frameOverhead : off+frameOverhead+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return frames, off, true
		}
		frames = append(frames, frame{typ: typ, payload: payload})
		off += frameOverhead + n
	}
	return frames, off, false
}

// encodeEntry serialises a cache entry: credibility, flags, the three
// timestamps, and the RRset packed as a dnswire message (answer section
// only), so every RR type the resolver can cache round-trips through the
// same wire encoder the network path uses.
func encodeEntry(e *cache.Entry) ([]byte, error) {
	msg := &dnswire.Message{Answer: e.RRs}
	wire, err := msg.Pack()
	if err != nil {
		return nil, err
	}
	b := make([]byte, 0, 2+3*8+4+len(wire))
	b = append(b, byte(e.Cred))
	var flags byte
	if e.Infra {
		flags |= 1
	}
	if e.Origin == cache.OriginPeer {
		flags |= 2
	}
	b = append(b, flags)
	b = binary.BigEndian.AppendUint64(b, uint64(e.OrigTTL))
	b = binary.BigEndian.AppendUint64(b, uint64(e.Expires.UnixNano()))
	b = binary.BigEndian.AppendUint64(b, uint64(e.StoredAt.UnixNano()))
	b = binary.BigEndian.AppendUint32(b, uint32(len(wire)))
	return append(b, wire...), nil
}

// decodeEntry parses a recEntry payload. It validates that the RRset is
// non-empty and homogeneous (one owner, one type) so a corrupt record can
// never install a malformed cache entry.
func decodeEntry(b []byte) (entryRecord, error) {
	var rec entryRecord
	if len(b) < 2+3*8+4 {
		return rec, errCorrupt
	}
	rec.Cred = cache.Credibility(b[0])
	if rec.Cred < cache.CredReferral || rec.Cred > cache.CredAnswer {
		return rec, errCorrupt
	}
	rec.Infra = b[1]&1 != 0
	if b[1]&2 != 0 {
		// Flag bit 2 tags peer-learned data; absent in pre-mesh store
		// files, which therefore decode as OriginUpstream.
		rec.Origin = cache.OriginPeer
	}
	rec.OrigTTL = time.Duration(binary.BigEndian.Uint64(b[2:10]))
	rec.Expires = time.Unix(0, int64(binary.BigEndian.Uint64(b[10:18])))
	rec.StoredAt = time.Unix(0, int64(binary.BigEndian.Uint64(b[18:26])))
	n := int(binary.BigEndian.Uint32(b[26:30]))
	if n < 0 || len(b)-30 != n {
		return rec, errCorrupt
	}
	msg, err := dnswire.Unpack(b[30:])
	if err != nil {
		return rec, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	if len(msg.Answer) == 0 {
		return rec, errCorrupt
	}
	name, typ := msg.Answer[0].Name, msg.Answer[0].Type()
	for _, rr := range msg.Answer {
		if rr.Name != name || rr.Type() != typ {
			return rec, errCorrupt
		}
	}
	rec.RRs = msg.Answer
	return rec, nil
}

// appendKey serialises a cache key as (name length, name, type).
func appendKey(b []byte, key cache.Key) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(key.Name)))
	b = append(b, key.Name...)
	return binary.BigEndian.AppendUint16(b, uint16(key.Type))
}

// decodeKey parses a key and returns the remaining bytes. The name is
// re-canonicalised so a corrupt record cannot install an invalid key.
func decodeKey(b []byte) (cache.Key, []byte, error) {
	if len(b) < 2 {
		return cache.Key{}, nil, errCorrupt
	}
	n := int(binary.BigEndian.Uint16(b[:2]))
	if len(b) < 2+n+2 {
		return cache.Key{}, nil, errCorrupt
	}
	name, err := dnswire.CanonicalName(string(b[2 : 2+n]))
	if err != nil {
		return cache.Key{}, nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	typ := dnswire.Type(binary.BigEndian.Uint16(b[2+n : 4+n]))
	return cache.Key{Name: name, Type: typ}, b[4+n:], nil
}

// encodeExtend serialises a journal Extend delta.
func encodeExtend(key cache.Key, expires time.Time) []byte {
	b := appendKey(nil, key)
	return binary.BigEndian.AppendUint64(b, uint64(expires.UnixNano()))
}

// decodeExtend parses a recExtend payload.
func decodeExtend(b []byte) (cache.Key, time.Time, error) {
	key, rest, err := decodeKey(b)
	if err != nil {
		return cache.Key{}, time.Time{}, err
	}
	if len(rest) != 8 {
		return cache.Key{}, time.Time{}, errCorrupt
	}
	return key, time.Unix(0, int64(binary.BigEndian.Uint64(rest))), nil
}

// decodeEvict parses a recEvict payload.
func decodeEvict(b []byte) (cache.Key, error) {
	key, rest, err := decodeKey(b)
	if err != nil {
		return cache.Key{}, err
	}
	if len(rest) != 0 {
		return cache.Key{}, errCorrupt
	}
	return key, nil
}

// encodeCredit serialises one zone's renewal credit.
func encodeCredit(zone dnswire.Name, credit float64) []byte {
	b := binary.BigEndian.AppendUint16(nil, uint16(len(zone)))
	b = append(b, zone...)
	return binary.BigEndian.AppendUint64(b, math.Float64bits(credit))
}

// decodeCredit parses a recCredit payload. Non-finite credit is corrupt:
// it would wedge the renewal scheduler's comparisons.
func decodeCredit(b []byte) (dnswire.Name, float64, error) {
	if len(b) < 2 {
		return "", 0, errCorrupt
	}
	n := int(binary.BigEndian.Uint16(b[:2]))
	if len(b) != 2+n+8 {
		return "", 0, errCorrupt
	}
	zone, err := dnswire.CanonicalName(string(b[2 : 2+n]))
	if err != nil {
		return "", 0, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	credit := math.Float64frombits(binary.BigEndian.Uint64(b[2+n:]))
	if math.IsNaN(credit) || math.IsInf(credit, 0) {
		return "", 0, errCorrupt
	}
	return zone, credit, nil
}

// serverRecord is the decoded form of a recServer payload, mirroring
// core.UpstreamServerState without importing core (the store does that).
type serverRecord struct {
	Addr            string
	SRTT            time.Duration
	RTTVar          time.Duration
	Samples         uint64
	Fails           uint32
	QuarantineUntil time.Time
}

// encodeServer serialises one upstream server's selection state. A zero
// quarantine release time is stored as 0 nanoseconds so it round-trips to
// the "not quarantined" zero time.
func encodeServer(s serverRecord) []byte {
	b := binary.BigEndian.AppendUint16(nil, uint16(len(s.Addr)))
	b = append(b, s.Addr...)
	b = binary.BigEndian.AppendUint64(b, uint64(s.SRTT))
	b = binary.BigEndian.AppendUint64(b, uint64(s.RTTVar))
	b = binary.BigEndian.AppendUint64(b, s.Samples)
	b = binary.BigEndian.AppendUint32(b, s.Fails)
	var quar uint64
	if !s.QuarantineUntil.IsZero() {
		quar = uint64(s.QuarantineUntil.UnixNano())
	}
	return binary.BigEndian.AppendUint64(b, quar)
}

// decodeServer parses a recServer payload.
func decodeServer(b []byte) (serverRecord, error) {
	var s serverRecord
	if len(b) < 2 {
		return s, errCorrupt
	}
	n := int(binary.BigEndian.Uint16(b[:2]))
	if n == 0 || len(b) != 2+n+3*8+4+8 {
		return s, errCorrupt
	}
	s.Addr = string(b[2 : 2+n])
	rest := b[2+n:]
	s.SRTT = time.Duration(binary.BigEndian.Uint64(rest[0:8]))
	s.RTTVar = time.Duration(binary.BigEndian.Uint64(rest[8:16]))
	s.Samples = binary.BigEndian.Uint64(rest[16:24])
	s.Fails = binary.BigEndian.Uint32(rest[24:28])
	if quar := binary.BigEndian.Uint64(rest[28:36]); quar != 0 {
		s.QuarantineUntil = time.Unix(0, int64(quar))
	}
	if s.SRTT < 0 || s.RTTVar < 0 {
		return s, errCorrupt
	}
	return s, nil
}
