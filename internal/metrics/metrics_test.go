package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if got := c.At(5); got != 0 {
		t.Errorf("empty At = %v, want 0", got)
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty Quantile should be NaN")
	}
	if !math.IsNaN(c.Mean()) {
		t.Error("empty Mean should be NaN")
	}
	if c.Points(5) != nil {
		t.Error("empty Points should be nil")
	}
}

func TestCDFAt(t *testing.T) {
	var c CDF
	for _, v := range []float64{1, 2, 3, 4} {
		c.Add(v)
	}
	tests := []struct {
		v    float64
		want float64
	}{
		{0, 0},
		{1, 0.25},
		{2.5, 0.5},
		{4, 1},
		{100, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.v); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	tests := []struct {
		q, want float64
	}{
		{0, 1},
		{0.5, 50},
		{0.95, 95},
		{1, 100},
	}
	for _, tt := range tests {
		if got := c.Quantile(tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestCDFMeanMax(t *testing.T) {
	var c CDF
	c.Add(2)
	c.Add(4)
	c.Add(9)
	if got := c.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := c.Max(); got != 9 {
		t.Errorf("Max = %v, want 9", got)
	}
}

func TestCDFAddDuration(t *testing.T) {
	var c CDF
	c.AddDuration(90 * time.Second)
	if got := c.Quantile(1); got != 90 {
		t.Errorf("Quantile(1) = %v, want 90 seconds", got)
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	var c CDF
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		c.Add(r.ExpFloat64() * 100)
	}
	pts := c.Points(50)
	if len(pts) != 50 {
		t.Fatalf("Points returned %d, want 50", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatalf("CDF not monotone at %d: %v < %v", i, pts[i].Y, pts[i-1].Y)
		}
		if pts[i].X < pts[i-1].X {
			t.Fatalf("X not monotone at %d", i)
		}
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("CDF at max = %v, want 1", pts[len(pts)-1].Y)
	}
}

func TestPropertyCDFBounds(t *testing.T) {
	f := func(vals []float64, probe float64) bool {
		var c CDF
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			c.Add(v)
		}
		p := c.At(probe)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyQuantileWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var c CDF
		n := 1 + r.Intn(100)
		for i := 0; i < n; i++ {
			c.Add(r.NormFloat64())
		}
		q := r.Float64()
		v := c.Quantile(q)
		return v >= c.Quantile(0) && v <= c.Quantile(1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestRatioAndPercent(t *testing.T) {
	if got := Ratio(1, 4); got != 0.25 {
		t.Errorf("Ratio = %v, want 0.25", got)
	}
	if got := Ratio(1, 0); got != 0 {
		t.Errorf("Ratio with zero total = %v, want 0", got)
	}
	if got := Percent(1, 2); got != 50 {
		t.Errorf("Percent = %v, want 50", got)
	}
}

func TestSeriesAppendAndStats(t *testing.T) {
	s := NewSeries("zones", 0)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		s.Append(base.Add(time.Duration(i)*time.Hour), float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	if got := s.MaxValue(); got != 9 {
		t.Errorf("MaxValue = %v, want 9", got)
	}
	if got := s.MeanValue(); got != 4.5 {
		t.Errorf("MeanValue = %v, want 4.5", got)
	}
}

func TestSeriesDecimation(t *testing.T) {
	s := NewSeries("records", 8)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		s.Append(base.Add(time.Duration(i)*time.Minute), float64(i))
	}
	if s.Len() > 8 {
		t.Errorf("Len = %d, want ≤ 8 after decimation", s.Len())
	}
	// Order must be preserved.
	for i := 1; i < s.Len(); i++ {
		if !s.Times[i].After(s.Times[i-1]) {
			t.Fatalf("times not increasing at %d", i)
		}
	}
}

func TestFormatPercent(t *testing.T) {
	if got := FormatPercent(0.1234); got != " 12.34%" {
		t.Errorf("FormatPercent = %q", got)
	}
}

func TestRTTEstimatorFirstSample(t *testing.T) {
	var r RTTEstimator
	if r.RTO() != 0 {
		t.Errorf("zero-value RTO = %v, want 0", r.RTO())
	}
	r.Observe(100 * time.Millisecond)
	// RFC 6298: SRTT=R, RTTVAR=R/2, RTO=SRTT+4·RTTVAR=3R.
	if r.SRTT() != 100*time.Millisecond {
		t.Errorf("SRTT = %v, want 100ms", r.SRTT())
	}
	if r.RTTVar() != 50*time.Millisecond {
		t.Errorf("RTTVAR = %v, want 50ms", r.RTTVar())
	}
	if r.RTO() != 300*time.Millisecond {
		t.Errorf("RTO = %v, want 300ms", r.RTO())
	}
}

func TestRTTEstimatorSmoothing(t *testing.T) {
	var r RTTEstimator
	r.Observe(100 * time.Millisecond)
	r.Observe(200 * time.Millisecond)
	// RTTVAR = 3/4·50ms + 1/4·|100−200|ms = 62.5ms
	// SRTT   = 7/8·100ms + 1/8·200ms = 112.5ms
	if got := r.RTTVar(); got != 62500*time.Microsecond {
		t.Errorf("RTTVAR = %v, want 62.5ms", got)
	}
	if got := r.SRTT(); got != 112500*time.Microsecond {
		t.Errorf("SRTT = %v, want 112.5ms", got)
	}
	if r.Samples() != 2 {
		t.Errorf("Samples = %d, want 2", r.Samples())
	}
}

func TestRTTEstimatorConverges(t *testing.T) {
	var r RTTEstimator
	for i := 0; i < 100; i++ {
		r.Observe(40 * time.Millisecond)
	}
	if got := r.SRTT(); got < 39*time.Millisecond || got > 41*time.Millisecond {
		t.Errorf("SRTT = %v after steady samples, want ≈40ms", got)
	}
	// Variance decays toward zero on a steady signal.
	if r.RTTVar() > 5*time.Millisecond {
		t.Errorf("RTTVAR = %v, want near zero", r.RTTVar())
	}
}

func TestRTTEstimatorNegativeClamped(t *testing.T) {
	var r RTTEstimator
	r.Observe(-time.Second)
	if r.SRTT() != 0 || r.RTO() != 0 {
		t.Errorf("negative sample produced SRTT=%v RTO=%v", r.SRTT(), r.RTO())
	}
}
