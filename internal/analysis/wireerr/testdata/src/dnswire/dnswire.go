// Package dnswire is a fixture stand-in for the repo's wire codec: the
// analyzer matches callees by package name, so these signatures are all
// it needs.
package dnswire

import "errors"

// Message is a trivial stand-in for the wire message.
type Message struct {
	Wire []byte
}

// Pack serializes the message.
func (m *Message) Pack() ([]byte, error) {
	if m == nil {
		return nil, errors.New("nil message")
	}
	return m.Wire, nil
}

// Unpack parses a wire message.
func Unpack(b []byte) (*Message, error) {
	if len(b) == 0 {
		return nil, errors.New("empty message")
	}
	return &Message{Wire: b}, nil
}

// CanonicalName validates and normalizes a domain name.
func CanonicalName(s string) (string, error) {
	if s == "" {
		return "", errors.New("empty name")
	}
	return s, nil
}

// Validate returns only an error.
func (m *Message) Validate() error {
	if len(m.Wire) == 0 {
		return errors.New("empty")
	}
	return nil
}

// Header has no error result; discarding it is fine.
func (m *Message) Header() []byte { return m.Wire[:0] }
