package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resilientdns/internal/authserver"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/transport"
	"resilientdns/internal/zone"
)

// These tests exercise the decomposed locking under the race detector.
// They use the Pipe transport (concurrency-safe, unlike simnet) and the
// real clock.

// newPipeHierarchy builds root → example. over Pipe: the root (10.0.0.1)
// delegates example. to ns1.example. (10.0.5.1), which serves
// www.example. plus hostN.example. for 0 ≤ N < hosts. irrTTL is the
// example. IRR TTL in seconds.
func newPipeHierarchy(t testing.TB, cfg Config, irrTTL uint32, hosts int) *CachingServer {
	t.Helper()
	root := zone.New(dnswire.Root)
	root.MustAdd(rrNS(".", 3600000, "a.root-servers.net."))
	root.MustAdd(rrA("a.root-servers.net.", 3600000, "10.0.0.1"))
	root.MustAdd(rrNS("example.", irrTTL, "ns1.example."))
	root.MustAdd(rrA("ns1.example.", irrTTL, "10.0.5.1"))

	ex := zone.New(dnswire.MustName("example."))
	ex.MustAdd(rrNS("example.", irrTTL, "ns1.example."))
	ex.MustAdd(rrA("ns1.example.", irrTTL, "10.0.5.1"))
	ex.MustAdd(rrA("www.example.", 300, "10.9.9.9"))
	for i := 0; i < hosts; i++ {
		ex.MustAdd(rrA(fmt.Sprintf("host%d.example.", i), 300, "10.9.8.7"))
	}

	if cfg.Transport == nil {
		cfg.Transport = &transport.Pipe{Handlers: map[transport.Addr]transport.Handler{
			"10.0.0.1": authserver.New(root),
			"10.0.5.1": authserver.New(ex),
		}}
	}
	cfg.Clock = simclock.Real{}
	cfg.RootHints = []ServerRef{{Host: dnswire.MustName("a.root-servers.net."), Addr: "10.0.0.1"}}
	cs, err := NewCachingServer(cfg)
	if err != nil {
		t.Fatalf("NewCachingServer: %v", err)
	}
	return cs
}

// flatRootPipe returns a Pipe whose single root server answers
// www.example. authoritatively, so a cold resolution costs exactly one
// upstream exchange.
func flatRootPipe() *transport.Pipe {
	root := zone.New(dnswire.Root)
	root.MustAdd(rrNS(".", 3600000, "a.root-servers.net."))
	root.MustAdd(rrA("a.root-servers.net.", 3600000, "10.0.0.1"))
	root.MustAdd(rrA("www.example.", 300, "10.9.9.9"))
	return &transport.Pipe{Handlers: map[transport.Addr]transport.Handler{
		"10.0.0.1": authserver.New(root),
	}}
}

// gatedTransport counts exchanges and blocks each one until gate closes.
type gatedTransport struct {
	inner transport.Transport
	gate  chan struct{}
	calls atomic.Int64
}

func (g *gatedTransport) Exchange(ctx context.Context, server transport.Addr, q *dnswire.Message) (*dnswire.Message, error) {
	g.calls.Add(1)
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.inner.Exchange(ctx, server, q)
}

// TestConcurrentResolveStorm hammers one server from many goroutines with
// a mix of names: shared cache shards, the flight table, and the stats
// all under contention. Run with -race.
func TestConcurrentResolveStorm(t *testing.T) {
	const (
		workers = 16
		iters   = 50
		hosts   = 8
	)
	cs := newPipeHierarchy(t, Config{}, 3600, hosts)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := dnswire.MustName(fmt.Sprintf("host%d.example.", (w+i)%hosts))
				if i%3 == 0 {
					name = dnswire.MustName("www.example.")
				}
				res, err := cs.Resolve(context.Background(), name, dnswire.TypeA)
				if err != nil {
					errs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				if res.RCode != dnswire.RCodeNoError || len(res.Answer) == 0 {
					errs <- fmt.Errorf("worker %d: bad result %+v", w, res)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := cs.Stats(); st.QueriesIn != workers*iters {
		t.Errorf("QueriesIn = %d, want %d", st.QueriesIn, workers*iters)
	}
}

// TestSingleflightCoalesces verifies that N concurrent identical queries
// cost exactly one upstream exchange.
func TestSingleflightCoalesces(t *testing.T) {
	const clients = 16
	gt := &gatedTransport{inner: flatRootPipe(), gate: make(chan struct{})}
	cs := newPipeHierarchy(t, Config{Transport: gt}, 3600, 0)

	name := dnswire.MustName("www.example.")
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := cs.Resolve(context.Background(), name, dnswire.TypeA)
			if err != nil {
				errs <- err
				return
			}
			if len(res.Answer) != 1 || res.Answer[0].Data.String() != "10.9.9.9" {
				errs <- fmt.Errorf("bad answer %+v", res)
			}
		}()
	}

	// Every client but the flight starter counts as coalesced the moment
	// it joins, so this is the signal that all of them are parked on the
	// same flight.
	deadline := time.Now().Add(5 * time.Second)
	for cs.Stats().Coalesced < clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d clients coalesced", cs.Stats().Coalesced, clients-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gt.gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := gt.calls.Load(); got != 1 {
		t.Errorf("upstream exchanges = %d, want exactly 1", got)
	}
	if st := cs.Stats(); st.Coalesced != clients-1 {
		t.Errorf("Coalesced = %d, want %d", st.Coalesced, clients-1)
	}
}

// TestCancelledLeaderHandsOff verifies the singleflight handoff: the
// caller that started a flight cancelling its own context must not fail
// the other callers waiting on the same flight.
func TestCancelledLeaderHandsOff(t *testing.T) {
	gt := &gatedTransport{inner: flatRootPipe(), gate: make(chan struct{})}
	cs := newPipeHierarchy(t, Config{Transport: gt}, 3600, 0)
	name := dnswire.MustName("www.example.")

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := cs.Resolve(leaderCtx, name, dnswire.TypeA)
		leaderErr <- err
	}()

	// Wait for the leader's flight to reach the (blocked) transport.
	deadline := time.Now().Add(5 * time.Second)
	for gt.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached the transport")
		}
		time.Sleep(time.Millisecond)
	}

	followerRes := make(chan *Result, 1)
	followerErrCh := make(chan error, 1)
	go func() {
		res, err := cs.Resolve(context.Background(), name, dnswire.TypeA)
		followerRes <- res
		followerErrCh <- err
	}()
	for cs.Stats().Coalesced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}

	close(gt.gate)
	if err := <-followerErrCh; err != nil {
		t.Fatalf("follower failed after leader cancelled: %v", err)
	}
	res := <-followerRes
	if len(res.Answer) != 1 || res.Answer[0].Data.String() != "10.9.9.9" {
		t.Errorf("follower answer = %+v", res)
	}
}

// TestAbandonedFlightRestarts verifies that cancelling the only waiter
// aborts the upstream work and that the next query starts a fresh flight
// instead of latching onto the dead one.
func TestAbandonedFlightRestarts(t *testing.T) {
	gt := &gatedTransport{inner: flatRootPipe(), gate: make(chan struct{})}
	cs := newPipeHierarchy(t, Config{Transport: gt}, 3600, 0)
	name := dnswire.MustName("www.example.")

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := cs.Resolve(ctx, name, dnswire.TypeA)
		errCh <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for gt.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flight never reached the transport")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled resolve returned %v", err)
	}

	close(gt.gate)
	res, err := cs.Resolve(context.Background(), name, dnswire.TypeA)
	if err != nil {
		t.Fatalf("fresh resolve after abandonment: %v", err)
	}
	if len(res.Answer) != 1 {
		t.Errorf("fresh resolve answer = %+v", res)
	}
}

// TestRenewalLoopConcurrentWithQueries runs the renewal scheduler
// alongside query traffic over short-TTL IRRs: the renewMu pop/refetch
// split and the credit accounting race with resolution. Run with -race.
func TestRenewalLoopConcurrentWithQueries(t *testing.T) {
	cs := newPipeHierarchy(t, Config{
		RefreshTTL: true,
		Renewal:    ALFU{C: 5, MaxDays: 50},
	}, 1, 4) // 1s IRR TTL: renewals come due immediately

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			cs.ProcessDueRenewals(ctx, time.Now())
		}
	}()

	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stop := time.Now().Add(300 * time.Millisecond)
			for i := 0; time.Now().Before(stop); i++ {
				name := dnswire.MustName(fmt.Sprintf("host%d.example.", (w+i)%4))
				if _, err := cs.Resolve(context.Background(), name, dnswire.TypeA); err != nil {
					errs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	timer := time.NewTimer(10 * time.Second)
	defer timer.Stop()
	// Stop the renewal goroutine once the query workers are finished.
	go func() {
		time.Sleep(400 * time.Millisecond)
		cancel()
	}()
	select {
	case <-done:
	case <-timer.C:
		t.Fatal("deadlock: workers did not finish")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRefetchRejectsMismatchedID ensures renewal refetches discard
// responses whose ID does not echo the query's. (Query-ID uniqueness
// itself is tested with the fetch engine in internal/resolve.)
func TestRefetchRejectsMismatchedID(t *testing.T) {
	inner := flatRootPipe()
	spoof := transport.HandlerFunc(func(q *dnswire.Message) *dnswire.Message {
		resp := inner.Handlers["10.0.0.1"].HandleQuery(q)
		resp.ID = q.ID + 1 // off-path spoofer guessing wrong
		return resp
	})
	cs := newPipeHierarchy(t, Config{
		Transport: &transport.Pipe{Handlers: map[transport.Addr]transport.Handler{"10.0.0.1": spoof}},
	}, 3600, 0)
	_, err := cs.Resolver().Refetch(context.Background(), nil, dnswire.Root, []transport.Addr{"10.0.0.1"})
	if err == nil {
		t.Fatal("refetch accepted a response with a mismatched ID")
	}
}
