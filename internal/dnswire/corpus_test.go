package dnswire

import (
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/. It is a generator, not a test: run
//
//	WRITE_FUZZ_CORPUS=1 go test -run TestWriteFuzzCorpus ./internal/dnswire
//
// after changing the wire format, and commit the result. Keeping the
// corpus in the repo means the CI fuzz smoke (make fuzz) starts from
// hostile shapes — pointer loops, torn RRs, DNSSEC payloads — instead
// of an empty corpus.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz seed corpora")
	}

	writeCorpus(t, "FuzzUnpack", unpackSeeds(t), nil)
	writeCorpus(t, "FuzzCanonicalName", nil, []string{
		strings.Repeat("a", 63) + ".example.",          // maximum label
		strings.Repeat("a", 63) + "a.example.",         // one past the label limit
		strings.Repeat("ab1.", 63), // near the 255-octet name ceiling
		"www.EXAMPLE.com", // case folding
		"a..b",            // empty interior label
		".",               // bare root
		"..",              // root with empty label
		"_dmarc._tcp.example.com.", // underscore service labels
		"xn--bcher-kva.example.",   // punycode
		"a b.example.",             // embedded space
		"a\x00b.example.",          // embedded NUL
		"-leading.example.",        // leading hyphen
		"*.wildcard.example.",      // wildcard label
	})
}

func unpackSeeds(t *testing.T) map[string][]byte {
	t.Helper()
	seeds := make(map[string][]byte)

	// A compression pointer that points at itself: the decoder's loop
	// guard must trip, never spin.
	selfLoop := []byte{
		0x00, 0x07, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // header, QDCount=1
		0xC0, 0x0C, // name: pointer to offset 12 (itself)
		0x00, 0x01, 0x00, 0x01, // QTYPE=A QCLASS=IN
	}
	seeds["pointer-self-loop"] = selfLoop

	// Two pointers that chase each other.
	mutualLoop := []byte{
		0x00, 0x07, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0x01, 'a', 0xC0, 0x10, // offset 12: label "a" then pointer to 16
		0x01, 'b', 0xC0, 0x0C, // offset 16: label "b" then pointer to 12
		0x00, 0x01, 0x00, 0x01,
	}
	seeds["pointer-mutual-loop"] = mutualLoop

	// A forward pointer (illegal: pointers must point backwards).
	forward := []byte{
		0x00, 0x07, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0xC0, 0x20, // pointer past the end of the question
		0x00, 0x01, 0x00, 0x01,
	}
	seeds["pointer-forward"] = forward

	// EDNS0 query: OPT pseudo-record in the additional section.
	ednsQ := NewQuery(0x1234, MustName("edns.example."), TypeA)
	ednsQ.SetEDNS0(1232)
	seeds["edns0-query"] = mustPack(t, ednsQ)

	// DNSSEC-shaped response: DNSKEY + RRSIG + DS answer records.
	sec := NewQuery(0x4242, MustName("signed.example."), TypeDNSKEY).Reply()
	sec.Answer = []RR{
		{Name: MustName("signed.example."), Class: ClassIN, TTL: 3600,
			Data: DNSKEY{Flags: 257, Protocol: 3, Algorithm: 13, PublicKey: []byte{1, 2, 3, 4}}},
		{Name: MustName("signed.example."), Class: ClassIN, TTL: 3600,
			Data: RRSIG{TypeCovered: TypeDNSKEY, Algorithm: 13, Labels: 2, OrigTTL: 3600,
				Expiration: 1767225600, Inception: 1764633600, KeyTag: 12345,
				SignerName: MustName("signed.example."), Signature: []byte{9, 9, 9, 9}}},
		{Name: MustName("signed.example."), Class: ClassIN, TTL: 3600,
			Data: DS{KeyTag: 12345, Algorithm: 13, DigestType: 2, Digest: []byte{5, 6, 7, 8}}},
	}
	seeds["dnssec-response"] = mustPack(t, sec)

	// AXFR-style stream: SOA ... SOA delimiting, mid-message.
	axfr := NewQuery(0x0001, MustName("zone.example."), TypeAXFR).Reply()
	soa := RR{Name: MustName("zone.example."), Class: ClassIN, TTL: 3600,
		Data: SOA{MName: MustName("ns.zone.example."), RName: MustName("admin.zone.example."),
			Serial: 2026080601, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300}}
	axfr.Answer = []RR{
		soa,
		{Name: MustName("www.zone.example."), Class: ClassIN, TTL: 300,
			Data: A{Addr: netip.MustParseAddr("192.0.2.80")}},
		soa,
	}
	seeds["axfr-soa-delimited"] = mustPack(t, axfr)

	// A real response torn at several hostile offsets: inside the
	// header, inside a name, and inside rdata.
	resp := NewQuery(0x2222, MustName("torn.example."), TypeA).Reply()
	resp.Answer = []RR{{Name: MustName("torn.example."), Class: ClassIN, TTL: 60,
		Data: A{Addr: netip.MustParseAddr("192.0.2.1")}}}
	wire := mustPack(t, resp)
	seeds["torn-header"] = wire[:8]
	seeds["torn-question"] = wire[:16]
	seeds["torn-rdata"] = wire[:len(wire)-2]

	// Valid message with trailing garbage (must be rejected, not read OOB).
	seeds["trailing-bytes"] = append(append([]byte{}, wire...), 0xDE, 0xAD, 0xBE, 0xEF)

	// Counts that promise more records than the body carries.
	lying := append([]byte{}, wire...)
	lying[7] = 0xFF // ANCount low byte
	seeds["lying-ancount"] = lying

	// TXT with a maximum-length character string.
	txt := NewQuery(0x3333, MustName("txt.example."), TypeTXT).Reply()
	txt.Answer = []RR{{Name: MustName("txt.example."), Class: ClassIN, TTL: 60,
		Data: TXT{Strings: []string{strings.Repeat("x", 255), ""}}}}
	seeds["txt-max-string"] = mustPack(t, txt)

	return seeds
}

func mustPack(t *testing.T, m *Message) []byte {
	t.Helper()
	b, err := m.Pack()
	if err != nil {
		t.Fatalf("packing corpus seed: %v", err)
	}
	return b
}

// writeCorpus writes seeds in the go-fuzz corpus file encoding. Exactly
// one of byteSeeds/stringSeeds is used, matching the target's signature.
func writeCorpus(t *testing.T, target string, byteSeeds map[string][]byte, stringSeeds []string) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name, body string) {
		content := "go test fuzz v1\n" + body + "\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for name, b := range byteSeeds {
		write("seed-"+name, fmt.Sprintf("[]byte(%q)", b))
	}
	for i, s := range stringSeeds {
		write(fmt.Sprintf("seed-%02d", i), fmt.Sprintf("string(%q)", s))
	}
}
