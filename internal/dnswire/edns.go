package dnswire

// EDNS0 support (RFC 6891), minimal: the OPT pseudo-record advertises the
// sender's maximum UDP payload size in its CLASS field. Options are
// carried opaquely by the OPT RData.

// DefaultEDNS0PayloadSize is the payload size this stack advertises.
const DefaultEDNS0PayloadSize = 4096

// SetEDNS0 attaches (or replaces) an OPT pseudo-record advertising the
// given UDP payload size.
func (m *Message) SetEDNS0(payloadSize uint16) {
	// Remove any existing OPT record first.
	kept := m.Additional[:0]
	for _, rr := range m.Additional {
		if rr.Type() != TypeOPT {
			kept = append(kept, rr)
		}
	}
	m.Additional = append(kept, RR{
		Name:  Root,
		Class: Class(payloadSize), // OPT overloads CLASS as payload size
		Data:  OPT{},
	})
}

// EDNS0PayloadSize returns the UDP payload size advertised by the
// message's OPT record, or (0, false) when there is none.
func (m *Message) EDNS0PayloadSize() (uint16, bool) {
	for _, rr := range m.Additional {
		if rr.Type() == TypeOPT {
			return uint16(rr.Class), true
		}
	}
	return 0, false
}
