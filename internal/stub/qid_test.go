package stub

import "testing"

// TestQIDStreamsDifferAcrossClients is the regression test for the
// predictable-QID bug: stub query IDs were seeded from
// time.Now().UnixNano(), so two stubs created in the same nanosecond
// emitted identical ID streams. With crypto/rand seeding, the chance of
// three clients sharing a 16-bit starting point is negligible.
func TestQIDStreamsDifferAcrossClients(t *testing.T) {
	const n = 64
	streams := make([][n]uint16, 3)
	for i := range streams {
		c := &Client{}
		for j := 0; j < n; j++ {
			streams[i][j] = c.nextID()
		}
	}
	allEqual := streams[0] == streams[1] && streams[1] == streams[2]
	if allEqual {
		t.Fatalf("three independent clients produced identical QID streams: %v", streams[0][:8])
	}
}

// TestQIDStreamUniqueWithinClient checks IDs do not repeat within a
// window far smaller than the 16-bit space.
func TestQIDStreamUniqueWithinClient(t *testing.T) {
	c := &Client{}
	seen := make(map[uint16]bool)
	for i := 0; i < 1000; i++ {
		id := c.nextID()
		if seen[id] {
			t.Fatalf("QID %d repeated within 1000 draws", id)
		}
		seen[id] = true
	}
}

// TestQIDConcurrentClients exercises the once-guarded seeding under the
// race detector.
func TestQIDConcurrentClients(t *testing.T) {
	c := &Client{}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				c.nextID()
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
