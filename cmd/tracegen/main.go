// Command tracegen generates synthetic stub-resolver query traces over a
// synthetic DNS hierarchy, and prints Table 1-style statistics for
// existing trace files.
//
// Usage:
//
//	tracegen -out trc1.trace -queries 50000 -clients 300 -days 7
//	tracegen -stats trc1.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"resilientdns/internal/topology"
	"resilientdns/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "", "output trace file (generation mode)")
	statsFile := flag.String("stats", "", "print statistics for an existing trace file")
	seed := flag.Int64("seed", 1, "random seed")
	queries := flag.Int("queries", 50000, "total queries")
	clients := flag.Int("clients", 300, "stub-resolver population")
	days := flag.Int("days", 7, "trace horizon in days")
	tlds := flag.Int("tlds", 12, "TLD count in the synthetic hierarchy")
	slds := flag.Int("slds", 70, "mean SLDs per TLD")
	label := flag.String("label", "TRC1", "trace label")
	flag.Parse()

	if *statsFile != "" {
		f, err := os.Open(*statsFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := workload.ReadTrace(f)
		if err != nil {
			return err
		}
		st := workload.ComputeStats(tr)
		fmt.Printf("trace %s: duration=%v clients=%d requests=%d names=%d zones=%d\n",
			st.Label, st.Duration, st.Clients, st.RequestsIn, st.Names, st.Zones)
		return nil
	}
	if *out == "" {
		return fmt.Errorf("either -out or -stats is required")
	}

	tp := topology.DefaultParams(*seed)
	tp.NumTLDs = *tlds
	tp.SLDsPerTLD = *slds
	tree, err := topology.Generate(tp)
	if err != nil {
		return err
	}
	gp := workload.DefaultGenParams(*label, *seed, time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	gp.Clients = *clients
	gp.TotalQueries = *queries
	gp.Duration = time.Duration(*days) * 24 * time.Hour
	tr := workload.Generate(gp, tree.QueryableNames())

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := tr.WriteTo(f); err != nil {
		return err
	}
	st := workload.ComputeStats(tr)
	fmt.Printf("wrote %s: %d queries, %d clients, %d names, %d zones over %v\n",
		*out, st.RequestsIn, st.Clients, st.Names, st.Zones, st.Duration)
	return nil
}
