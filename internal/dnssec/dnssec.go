// Package dnssec implements DNSSEC signing and validation with the
// Ed25519 algorithm (RFC 8080, algorithm 15): DNSKEY/DS/RRSIG generation,
// canonical RRset encoding (RFC 4034 §6), RRset signature verification,
// whole-zone signing, and DS-chain validation.
//
// The paper's §6 observes that DNSSEC introduces new infrastructure
// resource records — the DS set at the parent and the DNSKEY set at the
// child — and that the refresh/renewal/long-TTL techniques extend to
// them. This package provides the substrate that makes that extension
// concrete: signed zones whose DS/DNSKEY records flow through the same
// caching machinery as NS/glue.
package dnssec

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"resilientdns/internal/dnswire"
)

// AlgEd25519 is the DNSSEC algorithm number for Ed25519 (RFC 8080).
const AlgEd25519 = 15

// DigestSHA256 is the DS digest type for SHA-256 (RFC 4509).
const DigestSHA256 = 2

// protocolDNSSEC is the fixed DNSKEY protocol octet (RFC 4034 §2.1.2).
const protocolDNSSEC = 3

// Signer holds a zone's signing key.
type Signer struct {
	// Zone is the apex the key signs for.
	Zone dnswire.Name
	// Key is the public key record (owner = Zone).
	Key dnswire.DNSKEY
	// KeyTTL is the TTL used for the DNSKEY RRset.
	KeyTTL uint32

	priv ed25519.PrivateKey
}

// GenerateSigner creates an Ed25519 zone-signing key for zone. rand may
// be nil to use crypto/rand; tests pass a deterministic reader.
func GenerateSigner(zone dnswire.Name, keyTTL uint32, rand io.Reader) (*Signer, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("dnssec: generating key for %s: %w", zone, err)
	}
	return &Signer{
		Zone: zone,
		Key: dnswire.DNSKEY{
			Flags:     dnswire.DNSKEYFlagZone | dnswire.DNSKEYFlagSEP,
			Protocol:  protocolDNSSEC,
			Algorithm: AlgEd25519,
			PublicKey: append([]byte(nil), pub...),
		},
		KeyTTL: keyTTL,
		priv:   priv,
	}, nil
}

// KeyRR returns the signer's DNSKEY resource record.
func (s *Signer) KeyRR() dnswire.RR {
	return dnswire.RR{Name: s.Zone, Class: dnswire.ClassIN, TTL: s.KeyTTL, Data: s.Key}
}

// KeyTag computes the RFC 4034 Appendix B key tag of a DNSKEY.
func KeyTag(k dnswire.DNSKEY) (uint16, error) {
	rdata, err := dnswire.CanonicalRDataWire(k)
	if err != nil {
		return 0, err
	}
	var acc uint32
	for i, b := range rdata {
		if i&1 == 0 {
			acc += uint32(b) << 8
		} else {
			acc += uint32(b)
		}
	}
	acc += (acc >> 16) & 0xFFFF
	return uint16(acc & 0xFFFF), nil
}

// DSFromKey builds the parent-side DS record for a zone's DNSKEY.
func DSFromKey(zone dnswire.Name, k dnswire.DNSKEY, ttl uint32) (dnswire.RR, error) {
	tag, err := KeyTag(k)
	if err != nil {
		return dnswire.RR{}, err
	}
	ownerWire, err := dnswire.CanonicalNameWire(zone)
	if err != nil {
		return dnswire.RR{}, err
	}
	rdata, err := dnswire.CanonicalRDataWire(k)
	if err != nil {
		return dnswire.RR{}, err
	}
	h := sha256.New()
	h.Write(ownerWire)
	h.Write(rdata)
	return dnswire.RR{
		Name: zone, Class: dnswire.ClassIN, TTL: ttl,
		Data: dnswire.DS{
			KeyTag:     tag,
			Algorithm:  AlgEd25519,
			DigestType: DigestSHA256,
			Digest:     h.Sum(nil),
		},
	}, nil
}

// VerifyDS checks that a DS record matches a DNSKEY.
func VerifyDS(ds dnswire.DS, zone dnswire.Name, k dnswire.DNSKEY) error {
	want, err := DSFromKey(zone, k, 0)
	if err != nil {
		return err
	}
	wantDS := want.Data.(dnswire.DS)
	if ds.KeyTag != wantDS.KeyTag || ds.Algorithm != wantDS.Algorithm ||
		ds.DigestType != wantDS.DigestType || !bytes.Equal(ds.Digest, wantDS.Digest) {
		return fmt.Errorf("dnssec: DS does not match DNSKEY for %s", zone)
	}
	return nil
}

// signatureInput builds the RFC 4034 §3.1.8.1 signed data: the RRSIG
// RDATA minus the signature, followed by the canonical RRset.
func signatureInput(sig dnswire.RRSIG, rrs []dnswire.RR) ([]byte, error) {
	if len(rrs) == 0 {
		return nil, errors.New("dnssec: empty RRset")
	}
	var buf bytes.Buffer
	// RRSIG RDATA with empty signature field.
	head := sig
	head.Signature = nil
	headWire, err := dnswire.CanonicalRDataWire(head)
	if err != nil {
		return nil, err
	}
	buf.Write(headWire)

	// Canonical RRs: owner lowercase, original TTL, sorted by RDATA wire.
	type wireRR struct {
		rdata []byte
		rr    dnswire.RR
	}
	wires := make([]wireRR, 0, len(rrs))
	for _, rr := range rrs {
		rd, err := dnswire.CanonicalRDataWire(rr.Data)
		if err != nil {
			return nil, err
		}
		wires = append(wires, wireRR{rdata: rd, rr: rr})
	}
	sort.Slice(wires, func(i, j int) bool {
		return bytes.Compare(wires[i].rdata, wires[j].rdata) < 0
	})
	ownerWire, err := dnswire.CanonicalNameWire(rrs[0].Name)
	if err != nil {
		return nil, err
	}
	for _, w := range wires {
		buf.Write(ownerWire)
		var fixed [10]byte
		binary.BigEndian.PutUint16(fixed[0:], uint16(w.rr.Type()))
		binary.BigEndian.PutUint16(fixed[2:], uint16(w.rr.Class))
		binary.BigEndian.PutUint32(fixed[4:], sig.OrigTTL)
		binary.BigEndian.PutUint16(fixed[8:], uint16(len(w.rdata)))
		buf.Write(fixed[:])
		buf.Write(w.rdata)
	}
	return buf.Bytes(), nil
}

// SignRRSet signs one RRset, valid over [inception, expiration].
func (s *Signer) SignRRSet(rrs []dnswire.RR, inception, expiration time.Time) (dnswire.RR, error) {
	if len(rrs) == 0 {
		return dnswire.RR{}, errors.New("dnssec: empty RRset")
	}
	owner := rrs[0].Name
	for _, rr := range rrs[1:] {
		if rr.Name != owner || rr.Type() != rrs[0].Type() {
			return dnswire.RR{}, errors.New("dnssec: mixed RRset")
		}
	}
	if !owner.IsSubdomainOf(s.Zone) {
		return dnswire.RR{}, fmt.Errorf("dnssec: %s outside zone %s", owner, s.Zone)
	}
	tag, err := KeyTag(s.Key)
	if err != nil {
		return dnswire.RR{}, err
	}
	sig := dnswire.RRSIG{
		TypeCovered: rrs[0].Type(),
		Algorithm:   AlgEd25519,
		Labels:      uint8(owner.LabelCount()),
		OrigTTL:     rrs[0].TTL,
		Expiration:  uint32(expiration.Unix()),
		Inception:   uint32(inception.Unix()),
		KeyTag:      tag,
		SignerName:  s.Zone,
	}
	input, err := signatureInput(sig, rrs)
	if err != nil {
		return dnswire.RR{}, err
	}
	sig.Signature = ed25519.Sign(s.priv, input)
	return dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: rrs[0].TTL, Data: sig}, nil
}

// VerifyRRSet checks an RRset signature against a DNSKEY at time now.
func VerifyRRSet(key dnswire.DNSKEY, sigRR dnswire.RR, rrs []dnswire.RR, now time.Time) error {
	sig, ok := sigRR.Data.(dnswire.RRSIG)
	if !ok {
		return errors.New("dnssec: not an RRSIG record")
	}
	if key.Algorithm != AlgEd25519 || sig.Algorithm != AlgEd25519 {
		return fmt.Errorf("dnssec: unsupported algorithm %d/%d", key.Algorithm, sig.Algorithm)
	}
	if len(rrs) == 0 {
		return errors.New("dnssec: empty RRset")
	}
	if sig.TypeCovered != rrs[0].Type() {
		return fmt.Errorf("dnssec: RRSIG covers %s, RRset is %s", sig.TypeCovered, rrs[0].Type())
	}
	ts := uint32(now.Unix())
	if ts < sig.Inception || ts > sig.Expiration {
		return fmt.Errorf("dnssec: signature outside validity window")
	}
	tag, err := KeyTag(key)
	if err != nil {
		return err
	}
	if tag != sig.KeyTag {
		return fmt.Errorf("dnssec: key tag mismatch (%d vs %d)", tag, sig.KeyTag)
	}
	// Verification uses the RRset with the original TTL, so caches that
	// decremented TTLs must restore OrigTTL first; our callers pass the
	// cached copies which keep original TTLs.
	norm := make([]dnswire.RR, len(rrs))
	copy(norm, rrs)
	for i := range norm {
		norm[i].TTL = sig.OrigTTL
	}
	input, err := signatureInput(sig, norm)
	if err != nil {
		return err
	}
	if !ed25519.Verify(ed25519.PublicKey(key.PublicKey), input, sig.Signature) {
		return errors.New("dnssec: signature verification failed")
	}
	return nil
}
