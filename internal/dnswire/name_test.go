package dnswire

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonicalName(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    Name
		wantErr bool
	}{
		{name: "empty is root", in: "", want: Root},
		{name: "dot is root", in: ".", want: Root},
		{name: "adds trailing dot", in: "example.com", want: "example.com."},
		{name: "keeps trailing dot", in: "example.com.", want: "example.com."},
		{name: "lowercases", in: "ExAmPle.COM.", want: "example.com."},
		{name: "single label", in: "edu", want: "edu."},
		{name: "deep name", in: "a.b.c.d.e.f.g", want: "a.b.c.d.e.f.g."},
		{name: "empty label", in: "a..b", wantErr: true},
		{name: "leading dot", in: ".a.b", wantErr: true},
		{name: "label too long", in: strings.Repeat("x", 64) + ".com", wantErr: true},
		{name: "label at limit ok", in: strings.Repeat("x", 63) + ".com", want: Name(strings.Repeat("x", 63) + ".com.")},
		{
			name:    "name too long",
			in:      strings.Repeat(strings.Repeat("a", 63)+".", 4) + "b",
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := CanonicalName(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("CanonicalName(%q) = %q, want error", tt.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("CanonicalName(%q): %v", tt.in, err)
			}
			if got != tt.want {
				t.Errorf("CanonicalName(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestNameParent(t *testing.T) {
	tests := []struct {
		in   Name
		want Name
	}{
		{Root, Root},
		{"com.", Root},
		{"example.com.", "com."},
		{"www.example.com.", "example.com."},
		{"a.b.c.d.", "b.c.d."},
	}
	for _, tt := range tests {
		if got := tt.in.Parent(); got != tt.want {
			t.Errorf("%q.Parent() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestNameLabels(t *testing.T) {
	if got := Root.Labels(); got != nil {
		t.Errorf("Root.Labels() = %v, want nil", got)
	}
	got := MustName("www.example.com").Labels()
	want := []string{"www", "example", "com"}
	if len(got) != len(want) {
		t.Fatalf("Labels() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Labels()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if n := MustName("www.example.com").LabelCount(); n != 3 {
		t.Errorf("LabelCount() = %d, want 3", n)
	}
	if n := Root.LabelCount(); n != 0 {
		t.Errorf("Root.LabelCount() = %d, want 0", n)
	}
}

func TestNameIsSubdomainOf(t *testing.T) {
	tests := []struct {
		n, ancestor Name
		want        bool
	}{
		{"www.example.com.", Root, true},
		{"www.example.com.", "com.", true},
		{"www.example.com.", "example.com.", true},
		{"www.example.com.", "www.example.com.", true},
		{"example.com.", "www.example.com.", false},
		{"badexample.com.", "example.com.", false},
		{"com.", "org.", false},
		{Root, Root, true},
		{Root, "com.", false},
	}
	for _, tt := range tests {
		if got := tt.n.IsSubdomainOf(tt.ancestor); got != tt.want {
			t.Errorf("%q.IsSubdomainOf(%q) = %v, want %v", tt.n, tt.ancestor, got, tt.want)
		}
	}
}

func TestNameChild(t *testing.T) {
	got, err := Root.Child("com")
	if err != nil || got != "com." {
		t.Errorf("Root.Child(com) = %q, %v; want com.", got, err)
	}
	got, err = MustName("example.com").Child("www")
	if err != nil || got != "www.example.com." {
		t.Errorf("Child(www) = %q, %v; want www.example.com.", got, err)
	}
	if _, err := Root.Child(""); err == nil {
		t.Error("Child(\"\") succeeded, want error")
	}
}

func TestNameAncestors(t *testing.T) {
	got := MustName("www.example.com").Ancestors()
	want := []Name{"www.example.com.", "example.com.", "com.", Root}
	if len(got) != len(want) {
		t.Fatalf("Ancestors() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ancestors()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCommonAncestor(t *testing.T) {
	tests := []struct {
		a, b, want Name
	}{
		{"www.example.com.", "ftp.example.com.", "example.com."},
		{"www.example.com.", "www.example.org.", Root},
		{"a.b.c.", "b.c.", "b.c."},
		{"x.", "x.", "x."},
		{Root, "com.", Root},
	}
	for _, tt := range tests {
		if got := CommonAncestor(tt.a, tt.b); got != tt.want {
			t.Errorf("CommonAncestor(%q, %q) = %q, want %q", tt.a, tt.b, got, tt.want)
		}
	}
}

// randomName builds a random valid canonical name for property tests.
func randomName(r *rand.Rand) Name {
	depth := 1 + r.Intn(5)
	labels := make([]string, depth)
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-"
	for i := range labels {
		n := 1 + r.Intn(12)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[r.Intn(len(alphabet)-1)] // avoid '-' heavy names
		}
		labels[i] = string(b)
	}
	return MustName(strings.Join(labels, "."))
}

func TestPropertyParentIsAncestor(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomName(r)
		return n.IsSubdomainOf(n.Parent()) && n.Parent().LabelCount() == n.LabelCount()-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyAncestorsChainByParent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomName(r)
		anc := n.Ancestors()
		for i := 0; i < len(anc)-1; i++ {
			if anc[i].Parent() != anc[i+1] {
				return false
			}
		}
		return anc[len(anc)-1] == Root
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCommonAncestorIsAncestorOfBoth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomName(r), randomName(r)
		ca := CommonAncestor(a, b)
		return a.IsSubdomainOf(ca) && b.IsSubdomainOf(ca)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
