package resolve

import (
	"context"
	"errors"
	"testing"
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
)

// The a→b→a regression: before the shared chain walker, each of the
// three CNAME-chasing modes re-implemented its own loop and a cached
// CNAME cycle could spin one of them past any sane bound. Every mode
// must now terminate within MaxCNAME hops.

// putLoop caches the two-link cycle a.test. → b.test. → a.test.
func putLoop(c *cache.Cache) {
	c.Put([]dnswire.RR{rrCNAME("a.test.", "b.test.")}, cache.CredAuthority, false)
	c.Put([]dnswire.RR{rrCNAME("b.test.", "a.test.")}, cache.CredAuthority, false)
}

// TestCNAMELoopCacheHotPath: a fully cached cycle must fail the hot
// path with the chain-too-long error, not hang or answer.
func TestCNAMELoopCacheHotPath(t *testing.T) {
	r := newTestResolver(t, Config{})
	putLoop(r.cache)
	res, err := r.Lookup(nil, dnswire.MustName("a.test."), dnswire.TypeA)
	if !errors.Is(err, ErrResolutionFailed) {
		t.Fatalf("Lookup err = %v, want ErrResolutionFailed (chain too long)", err)
	}
	if res != nil {
		t.Errorf("Lookup returned an answer %+v for a CNAME cycle", res)
	}
}

// TestCNAMELoopResolveChain: the slow path walks the same cached cycle
// (each hop is served from cache, so no upstream query is ever sent)
// and must fail the same way.
func TestCNAMELoopResolveChain(t *testing.T) {
	r := newTestResolver(t, Config{})
	putLoop(r.cache)
	res, err := r.ResolveChain(context.Background(), nil, dnswire.MustName("a.test."), dnswire.TypeA)
	if !errors.Is(err, ErrResolutionFailed) {
		t.Fatalf("ResolveChain err = %v, want ErrResolutionFailed (chain too long)", err)
	}
	if res != nil {
		t.Errorf("ResolveChain returned an answer %+v for a CNAME cycle", res)
	}
	if c := r.Counters(); c.QueriesOut != 0 {
		t.Errorf("QueriesOut = %d, want 0: the cycle is fully cached", c.QueriesOut)
	}
}

// TestCNAMELoopStaleAnswer: a cycle in the stale cache must come out as
// a bounded partial chain (stale mode serves what it has; the bound is
// the walker's hop limit), never an unbounded answer.
func TestCNAMELoopStaleAnswer(t *testing.T) {
	clk := simclock.NewVirtual(epoch)
	c := cache.New(cache.Config{Clock: clk, KeepStale: 24 * time.Hour})
	r := newTestResolver(t, Config{Clock: clk, Cache: c, ServeStale: 24 * time.Hour})
	putLoop(c)
	clk.Advance(10 * time.Minute) // both CNAMEs (TTL 300) are now stale

	res := r.staleAnswer(nil, dnswire.MustName("a.test."), dnswire.TypeA)
	if res == nil {
		t.Fatal("staleAnswer returned nothing for a stale chain")
	}
	if max := r.cfg.MaxCNAME + 1; len(res.Answer) > max {
		t.Fatalf("stale answer has %d records, want at most %d (hop bound)", len(res.Answer), max)
	}
	for _, rr := range res.Answer {
		if rr.TTL != StaleServeTTL {
			t.Errorf("stale RR served with TTL %d, want %d", rr.TTL, StaleServeTTL)
		}
	}
}

// TestWalkChainMissReportsWhere: the walker hands back the name the
// chain broke at, which ResolveChain relies on to resume after a
// partial stale prefix.
func TestWalkChainMissReportsWhere(t *testing.T) {
	r := newTestResolver(t, Config{})
	r.cache.Put([]dnswire.RR{rrCNAME("a.test.", "b.test.")}, cache.CredAuthority, false)
	// b.test. is not cached: the hot path must miss (defer to the slow
	// path), not serve the dangling CNAME.
	res, err := r.Lookup(nil, dnswire.MustName("a.test."), dnswire.TypeA)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if res != nil {
		t.Errorf("Lookup served a dangling CNAME prefix: %+v", res)
	}
}
