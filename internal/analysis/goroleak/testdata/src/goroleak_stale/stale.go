// Package goroleak_stale exercises stale-suppression detection: the
// loop got its ctx.Done case but the directive outlived the finding.
package goroleak_stale

import (
	"context"
	"time"
)

// RunLoop observes cancellation; nothing to suppress here anymore.
func RunLoop(ctx context.Context) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// Start still carries the directive from before the fix.
func Start(ctx context.Context) {
	go RunLoop(ctx) //dnslint:ignore goroleak legacy suppression // want "stale"
}
