// Command dnssign DNSSEC-signs a master-file zone with a fresh Ed25519
// key: it writes the signed zone (DNSKEY + RRSIGs) to stdout or a file
// and prints the DS record for the parent.
//
// Usage:
//
//	dnssign -zone example.com -in example.com.zone -out example.com.signed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"resilientdns/internal/dnssec"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/zone"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dnssign:", err)
		os.Exit(1)
	}
}

func run() error {
	origin := flag.String("zone", "", "zone origin (required)")
	in := flag.String("in", "", "input master file (required)")
	out := flag.String("out", "", "output file (default stdout)")
	validity := flag.Duration("validity", 30*24*time.Hour, "signature validity period")
	keyTTL := flag.Uint("key-ttl", 3600, "TTL for the DNSKEY RRset")
	flag.Parse()
	if *origin == "" || *in == "" {
		return fmt.Errorf("-zone and -in are required")
	}

	name, err := dnswire.CanonicalName(*origin)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	z, err := zone.Parse(f, name)
	f.Close()
	if err != nil {
		return err
	}

	signer, err := dnssec.GenerateSigner(name, uint32(*keyTTL), nil)
	if err != nil {
		return err
	}
	now := time.Now()
	ds, err := dnssec.SignZone(z, signer, now.Add(-time.Hour), now.Add(*validity))
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	if _, err := io.WriteString(w, z.String()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "signed %s (%d records)\nDS for the parent zone:\n%s\n",
		name, z.RecordCount(), ds)
	return nil
}
