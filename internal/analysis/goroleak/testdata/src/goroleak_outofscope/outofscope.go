// Package goroleak_outofscope stands in for the short-lived CLIs: the
// leaky spawn is not reported outside -pkgs, but a stale suppression
// still is — scope never excuses dead directives.
package goroleak_outofscope

import "time"

// Replay runs forever; the process exit is its collector.
func Replay() {
	for {
		time.Sleep(time.Second)
	}
}

// Start would be flagged in a scoped package.
func Start() {
	go Replay()
}

// Sleep carries a directive that suppresses nothing: reported even
// though the package is out of scope.
func Sleep() {
	time.Sleep(time.Second) //dnslint:ignore goroleak legacy suppression // want "stale"
}
