package core

import (
	"testing"
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
)

func TestRenewalCreditsRoundTrip(t *testing.T) {
	f := newFixture(t, Config{RefreshTTL: true, Renewal: ALFU{C: 5, MaxDays: DefaultLFUMax(5)}})
	f.resolveA(t, "www.ucla.edu.")
	f.resolveA(t, "www.ucla.edu.")
	credits := f.cs.RenewalCredits()
	if len(credits) == 0 {
		t.Fatal("no credit accrued after repeated queries")
	}

	g := newFixture(t, Config{RefreshTTL: true, Renewal: ALFU{C: 5, MaxDays: DefaultLFUMax(5)}})
	g.cs.RestoreRenewalCredits(credits)
	got := g.cs.RenewalCredits()
	for z, c := range credits {
		if got[z] != c {
			t.Errorf("credit[%s] = %v, want %v", z, got[z], c)
		}
	}
	// Non-positive and empty-zone credit is dropped.
	g.cs.RestoreRenewalCredits(map[dnswire.Name]float64{"": 4, "junk.edu.": 0, "neg.edu.": -2})
	got = g.cs.RenewalCredits()
	for _, z := range []dnswire.Name{"", "junk.edu.", "neg.edu."} {
		if _, ok := got[z]; ok {
			t.Errorf("invalid credit for %q was stored", z)
		}
	}
}

func TestUpstreamStatesRoundTrip(t *testing.T) {
	u := newUpstream(UpstreamConfig{})
	now := epoch
	u.observeSuccess("10.0.0.1:53", 20*time.Millisecond)
	u.observeSuccess("10.0.0.1:53", 30*time.Millisecond)
	u.observeFailure("10.0.0.2:53", now)
	u.observeFailure("10.0.0.2:53", now)

	states := u.export()
	if len(states) != 2 {
		t.Fatalf("exported %d states, want 2", len(states))
	}
	if states[0].Addr != "10.0.0.1:53" || states[1].Addr != "10.0.0.2:53" {
		t.Fatalf("export not sorted by address: %+v", states)
	}

	u2 := newUpstream(UpstreamConfig{})
	u2.restore(states)
	again := u2.export()
	if len(again) != len(states) {
		t.Fatalf("restored %d states, want %d", len(again), len(states))
	}
	for i := range states {
		if again[i] != states[i] {
			t.Errorf("state[%d] = %+v, want %+v", i, again[i], states[i])
		}
	}
	// Behavioural check: the restored failure state still quarantines.
	if !u2.quarantined("10.0.0.2:53", now) {
		t.Error("restored server lost its quarantine")
	}
}

func TestRestoreUpstreamStatesSkipsInvalid(t *testing.T) {
	u := newUpstream(UpstreamConfig{})
	u.restore([]UpstreamServerState{
		{Addr: "", Samples: 3},
		{Addr: "10.0.0.9:53", Fails: -5},
	})
	states := u.export()
	if len(states) != 1 {
		t.Fatalf("restored %d states, want 1", len(states))
	}
	if states[0].Fails != 0 {
		t.Errorf("negative fails not clamped: %+v", states[0])
	}
}

func TestRearmRenewalsSchedulesRestoredIRRs(t *testing.T) {
	f := newFixture(t, Config{RefreshTTL: true, Renewal: ALFU{C: 5, MaxDays: DefaultLFUMax(5)}})
	f.resolveA(t, "www.ucla.edu.")

	// A second server receives the cache contents via Restore (the
	// persistence path), which bypasses Put and thus renewal scheduling.
	g := newFixture(t, Config{RefreshTTL: true, Renewal: ALFU{C: 5, MaxDays: DefaultLFUMax(5)}})
	f.cs.Cache().Range(func(e *cache.Entry) bool {
		g.cs.Cache().Restore(cache.RestoreEntry{
			RRs: e.RRs, Cred: e.Cred, Infra: e.Infra,
			OrigTTL: e.OrigTTL, Expires: e.Expires, StoredAt: e.StoredAt,
		})
		return true
	})
	if _, ok := g.cs.NextRenewalDue(); ok {
		t.Fatal("renewal scheduled before RearmRenewals — test premise broken")
	}
	g.cs.RearmRenewals()
	if _, ok := g.cs.NextRenewalDue(); !ok {
		t.Error("RearmRenewals scheduled nothing for restored IRRs")
	}

	// Without a renewal policy it is a no-op.
	h := newFixture(t, Config{})
	h.cs.RearmRenewals()
	if _, ok := h.cs.NextRenewalDue(); ok {
		t.Error("RearmRenewals scheduled work with renewal off")
	}
}
