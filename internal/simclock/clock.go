// Package simclock provides a clock abstraction so that the same caching
// server and resolver code can run against the wall clock in production and
// against a deterministic virtual clock in trace-driven simulation.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock supplies the current time. Implementations must be safe for
// concurrent use.
type Clock interface {
	Now() time.Time
}

// Real is a Clock backed by the wall clock. The zero value is ready to use.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time {
	return time.Now() //dnslint:ignore wallclock Real is the production wall-clock implementation behind the Clock interface
}

// Virtual is a deterministic discrete-event clock. Time only moves when
// Advance or AdvanceTo is called; scheduled events fire in timestamp order
// (ties broken by scheduling order) as time passes them.
//
// The zero value starts at the zero time; use NewVirtual to pick an epoch.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	events eventQueue
	seq    uint64
}

// NewVirtual returns a virtual clock whose current time is epoch.
func NewVirtual(epoch time.Time) *Virtual {
	return &Virtual{now: epoch}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Schedule registers fn to run when the clock reaches at. Events scheduled
// for a time not after Now fire on the next Advance call (with zero
// duration allowed). fn runs synchronously inside Advance, without the
// clock lock held, and may schedule further events.
func (v *Virtual) Schedule(at time.Time, fn func(now time.Time)) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.seq++
	heap.Push(&v.events, &event{at: at, seq: v.seq, fn: fn})
}

// Advance moves the clock forward by d, firing due events in order.
func (v *Virtual) Advance(d time.Duration) {
	v.AdvanceTo(v.Now().Add(d))
}

// AdvanceTo moves the clock forward to t (no-op if t is in the past),
// firing every event whose deadline is ≤ t in timestamp order.
func (v *Virtual) AdvanceTo(t time.Time) {
	for {
		v.mu.Lock()
		if len(v.events) == 0 || v.events[0].at.After(t) {
			if t.After(v.now) {
				v.now = t
			}
			v.mu.Unlock()
			return
		}
		ev := heap.Pop(&v.events).(*event)
		if ev.at.After(v.now) {
			v.now = ev.at
		}
		now := v.now
		v.mu.Unlock()
		ev.fn(now)
	}
}

// PendingEvents returns the number of scheduled events not yet fired.
func (v *Virtual) PendingEvents() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.events)
}

// event is a scheduled callback.
type event struct {
	at  time.Time
	seq uint64
	fn  func(now time.Time)
}

// eventQueue is a min-heap of events ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
