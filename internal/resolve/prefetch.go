package resolve

import (
	"context"
	"sync"
	"time"

	"resilientdns/internal/cache"
)

const (
	defaultPrefetchWorkers = 2
	defaultPrefetchQueue   = 64
	// prefetchTimeout bounds one background refresh; prefetches refresh
	// still-live entries, so abandoning a slow one costs nothing.
	prefetchTimeout = 10 * time.Second
)

// prefetcher is the bounded background worker pool that takes prefetch
// refetches off the client's critical path. Keys arriving while the same
// key is queued or in flight are dropped (singleflight semantics), and a
// full queue drops new keys rather than blocking the hot path: a missed
// prefetch only means the next query may pay a normal resolution.
type prefetcher struct {
	r *Resolver

	mu       sync.Mutex
	inflight map[cache.Key]bool
	closed   bool

	ch chan cache.Key
	wg sync.WaitGroup
}

// newPrefetcher starts the worker pool.
func newPrefetcher(r *Resolver, workers, queue int) *prefetcher {
	if workers <= 0 {
		workers = defaultPrefetchWorkers
	}
	if queue <= 0 {
		queue = defaultPrefetchQueue
	}
	pf := &prefetcher{
		r:        r,
		inflight: make(map[cache.Key]bool),
		ch:       make(chan cache.Key, queue),
	}
	pf.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go pf.worker()
	}
	return pf
}

// enqueue hands a key to the pool without ever blocking. Duplicate keys
// and overflow are dropped under the same lock that guards close, so a
// send can never race a close(ch).
func (pf *prefetcher) enqueue(k cache.Key) {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed || pf.inflight[k] {
		return
	}
	select {
	case pf.ch <- k:
		pf.inflight[k] = true
	default:
		// Queue full: drop. The entry is still live; the next query in
		// the prefetch window retries.
	}
}

// worker drains the queue until close.
func (pf *prefetcher) worker() {
	defer pf.wg.Done()
	for k := range pf.ch {
		pf.run(k)
		pf.mu.Lock()
		delete(pf.inflight, k)
		pf.mu.Unlock()
	}
}

// run performs one background refresh, mirroring the inline prefetch:
// a full iteration at depth 1 (no re-prefetch, no validation) followed
// by an Extend on success.
func (pf *prefetcher) run(k cache.Key) {
	r := pf.r
	ctx, cancel := context.WithTimeout(context.Background(), prefetchTimeout)
	defer cancel()
	ctx = WithRetryBudget(ctx, r.cfg.Upstream.RetryBudget)
	tr := r.NewTrace(KindPrefetch, k.Name, k.Type)
	r.counters.PrefetchQueries.Add(1)
	_, _, err := r.iterate(ctx, tr, k.Name, k.Type, 1, false, false)
	if err == nil {
		r.cache.Extend(k.Name, k.Type)
	}
	r.FinishTrace(tr, nil, err)
}

// close stops the pool and waits for in-flight refreshes to finish.
func (pf *prefetcher) close() {
	pf.mu.Lock()
	if pf.closed {
		pf.mu.Unlock()
		return
	}
	pf.closed = true
	close(pf.ch)
	pf.mu.Unlock()
	pf.wg.Wait()
}
