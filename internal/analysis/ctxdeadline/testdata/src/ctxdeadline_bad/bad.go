// Package ctxdeadline_bad is a failing fixture: contexts born from
// Background/TODO reach an Exchange-shaped sink without ever being
// bounded.
package ctxdeadline_bad

import (
	"context"
	"time"
)

// Transport mirrors the resilientdns transport.Transport shape.
type Transport interface {
	Exchange(ctx context.Context, server string, query []byte) ([]byte, error)
}

// Probe sends with a bare Background: unbounded.
func Probe(tr Transport) {
	tr.Exchange(context.Background(), "10.0.0.1", nil) // want "context without a deadline"
}

// Cancellable derives from Background through WithCancel: cancellation
// is not a deadline, so the flow is still unbounded.
func Cancellable(tr Transport) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr.Exchange(ctx, "10.0.0.1", nil) // want "context without a deadline"
}

// Conditional only sometimes wraps: the unwrapped path survives the
// union over definitions, which is exactly the -no-selection hole.
func Conditional(tr Transport, t time.Duration) {
	ctx := context.TODO()
	if t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	tr.Exchange(ctx, "10.0.0.1", nil) // want "context without a deadline"
}
