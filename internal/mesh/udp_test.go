package mesh

import (
	"context"
	"net"
	"testing"
	"time"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
)

// startUDPNode brings up one real-socket mesh node on 127.0.0.1 with an
// ephemeral port, returning it with its backend. Test files are exempt
// from the wallclock analyzer, so the real clock is fine here.
func startUDPNode(t *testing.T, peers []string) (*Node, *Conn, *fakeBackend) {
	t.Helper()
	conn, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	backend := newFakeBackend()
	node, err := NewNode(Config{
		Self:         conn.LocalAddr(),
		Key:          testKey,
		Peers:        peers,
		Transport:    conn,
		Clock:        simclock.Real{},
		Backend:      backend,
		OwnerRenewal: true,
		CallTimeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := conn.Serve(node); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	return node, conn, backend
}

// TestUDPTwoNodes runs the full stack over real sockets: handshake via
// probe, gossip push, and peer fetch.
func TestUDPTwoNodes(t *testing.T) {
	a, aConn, aBackend := startUDPNode(t, nil)
	b, _, bBackend := startUDPNode(t, []string{aConn.LocalAddr()})

	// B probes A: first contact challenges, the retry confirms.
	b.Tick(time.Now())
	var confirmed bool
	for i := 0; i < 50 && !confirmed; i++ {
		snap := b.Snapshot()
		confirmed = len(snap.Peers) == 1 && snap.Peers[0].Confirmed && snap.Peers[0].State == "alive"
		if !confirmed {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if !confirmed {
		t.Fatalf("B never confirmed A over UDP: %+v", b.Snapshot().Peers)
	}
	// A saw B's authenticated, cookie-echoed probe and confirmed it back.
	aSnap := a.Snapshot()
	if len(aSnap.Peers) != 1 || !aSnap.Peers[0].Confirmed {
		t.Fatalf("A did not admit+confirm B from its inbound probe: %+v", aSnap.Peers)
	}

	// Gossip: B pushes a zone's IRRs; GossipZone blocks on the ack, so
	// A's ingest has happened by the time it returns.
	zone := dnswire.MustName("udp.example.")
	bBackend.setIRR(zone, &dnswire.Message{
		Answer: []dnswire.RR{{
			Name: zone, Class: dnswire.ClassIN, TTL: 60,
			Data: dnswire.NS{Host: dnswire.MustName("ns.udp.example.")},
		}},
	})
	b.GossipZone(zone)
	if aBackend.getIngested(zone) == nil {
		t.Fatal("A never ingested B's gossip push over UDP")
	}

	// Peer fetch: A answers from its (fake) cache.
	qname := dnswire.MustName("www.udp.example.")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if msg := b.PeerFetch(ctx, qname, dnswire.TypeA); msg != nil {
		t.Fatalf("fetch of uncached name = %+v, want nil", msg)
	}
}

// TestUDPOversizedDatagramIgnored pins the read loop's bound: a datagram
// larger than any valid frame is dropped without crashing the loop.
func TestUDPOversizedDatagramIgnored(t *testing.T) {
	a, aConn, _ := startUDPNode(t, nil)
	b, bConn, _ := startUDPNode(t, []string{aConn.LocalAddr()})

	huge := make([]byte, MaxFrame+100)
	if _, err := bConn.pc.WriteToUDP(huge, mustUDPAddr(t, aConn.LocalAddr())); err != nil {
		t.Fatal(err)
	}
	// The loop must still serve valid traffic afterwards.
	b.Tick(time.Now())
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s := b.Snapshot(); len(s.Peers) == 1 && s.Peers[0].Confirmed {
			_ = a
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("read loop did not survive an oversized datagram")
}

func mustUDPAddr(t *testing.T, s string) *net.UDPAddr {
	t.Helper()
	addr, err := net.ResolveUDPAddr("udp", s)
	if err != nil {
		t.Fatal(err)
	}
	return addr
}
