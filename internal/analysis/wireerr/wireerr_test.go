package wireerr_test

import (
	"path/filepath"
	"testing"

	"resilientdns/internal/analysis/antest"
	"resilientdns/internal/analysis/wireerr"
)

func TestWireErr(t *testing.T) {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	antest.Run(t, dir, wireerr.Analyzer, "wireerr_bad", "wireerr_ok")
}
