package onepath_test

import (
	"path/filepath"
	"testing"

	"resilientdns/internal/analysis/antest"
	"resilientdns/internal/analysis/onepath"
)

func TestOnepath(t *testing.T) {
	prev := onepath.Analyzer.Flags.Lookup("pkgs").Value.String()
	if err := onepath.Analyzer.Flags.Set("pkgs", "onepath_bad,onepath_ignored,onepath_ok"); err != nil {
		t.Fatal(err)
	}
	defer onepath.Analyzer.Flags.Set("pkgs", prev)

	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	antest.Run(t, dir, onepath.Analyzer,
		"onepath_bad", "onepath_ignored", "onepath_ok")
}

// TestOutOfScopePackage: a package not listed in -pkgs (the transport
// layer, the stub client, ...) may exchange freely.
func TestOutOfScopePackage(t *testing.T) {
	prev := onepath.Analyzer.Flags.Lookup("pkgs").Value.String()
	if err := onepath.Analyzer.Flags.Set("pkgs", "onepath_ok"); err != nil {
		t.Fatal(err)
	}
	defer onepath.Analyzer.Flags.Set("pkgs", prev)

	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	// onepath_outofscope has the forbidden shape but carries no // want
	// expectations: any diagnostic on it fails the run, proving the
	// pkgs filter keeps unlisted packages untouched.
	antest.Run(t, dir, onepath.Analyzer, "onepath_outofscope")
}
