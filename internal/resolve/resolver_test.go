package resolve

import (
	"context"
	"errors"
	"net/netip"
	"sync"
	"testing"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/simclock"
	"resilientdns/internal/transport"
)

func rrA(name string, ttl uint32, ip string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   ttl,
		Data:  dnswire.A{Addr: netip.MustParseAddr(ip)},
	}
}

func rrAAAA(name string, ttl uint32, ip string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   ttl,
		Data:  dnswire.AAAA{Addr: netip.MustParseAddr(ip)},
	}
}

func rrNS(name string, ttl uint32, host string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   ttl,
		Data:  dnswire.NS{Host: dnswire.MustName(host)},
	}
}

func rrCNAME(name, target string) dnswire.RR {
	return dnswire.RR{
		Name:  dnswire.MustName(name),
		Class: dnswire.ClassIN,
		TTL:   300,
		Data:  dnswire.CNAME{Target: dnswire.MustName(target)},
	}
}

// deadTransport times out every exchange.
var deadTransport = transport.Exchanger(func(context.Context, transport.Addr, *dnswire.Message) (*dnswire.Message, error) {
	return nil, transport.ErrTimeout
})

// newTestResolver builds a bare Resolver over a fresh cache and virtual
// clock, filling only the required fields the test left unset.
func newTestResolver(t testing.TB, cfg Config) *Resolver {
	t.Helper()
	if cfg.Clock == nil {
		cfg.Clock = simclock.NewVirtual(epoch)
	}
	if cfg.Cache == nil {
		cfg.Cache = cache.New(cache.Config{Clock: cfg.Clock})
	}
	if cfg.Transport == nil {
		cfg.Transport = deadTransport
	}
	if len(cfg.RootAddrs) == 0 {
		cfg.RootAddrs = []transport.Addr{"10.0.0.1"}
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

// TestAAAAGlueFallback is the regression test for renewal extending AAAA
// glue that selection could never use: a name server with only an AAAA
// record must still be reachable via deepestKnownZone and ZoneAddrs.
func TestAAAAGlueFallback(t *testing.T) {
	r := newTestResolver(t, Config{})
	nsSet := []dnswire.RR{rrNS("v6.test.", 3600, "ns1.v6.test.")}
	r.cache.Put(nsSet, cache.CredAuthority, true)
	r.cache.Put([]dnswire.RR{rrAAAA("ns1.v6.test.", 3600, "2001:db8::53")}, cache.CredAuthority, true)

	zname, addrs := r.deepestKnownZone(dnswire.MustName("www.v6.test."), dnswire.TypeA, false)
	if zname != dnswire.MustName("v6.test.") {
		t.Fatalf("deepestKnownZone = %s, want v6.test.", zname)
	}
	if len(addrs) != 1 || addrs[0] != transport.Addr("2001:db8::53") {
		t.Errorf("addrs = %v, want the AAAA glue address", addrs)
	}

	if got := r.ZoneAddrs(nsSet); len(got) != 1 || got[0] != transport.Addr("2001:db8::53") {
		t.Errorf("ZoneAddrs = %v, want the AAAA glue address", got)
	}
}

// TestAGluePreferredOverAAAA: AAAA is strictly a fallback; when both
// families are cached only the A addresses are used (matching the
// simulator's IPv4-only universe).
func TestAGluePreferredOverAAAA(t *testing.T) {
	r := newTestResolver(t, Config{})
	nsSet := []dnswire.RR{rrNS("v6.test.", 3600, "ns1.v6.test.")}
	r.cache.Put(nsSet, cache.CredAuthority, true)
	r.cache.Put([]dnswire.RR{rrA("ns1.v6.test.", 3600, "10.6.6.6")}, cache.CredAuthority, true)
	r.cache.Put([]dnswire.RR{rrAAAA("ns1.v6.test.", 3600, "2001:db8::53")}, cache.CredAuthority, true)

	_, addrs := r.deepestKnownZone(dnswire.MustName("www.v6.test."), dnswire.TypeA, false)
	if len(addrs) != 1 || addrs[0] != transport.Addr("10.6.6.6") {
		t.Errorf("addrs = %v, want only the A glue", addrs)
	}
}

// TestBudgetExhaustionError: the fetch engine surfaces the sentinel so
// callers can tell budget exhaustion from ordinary unreachability.
func TestBudgetExhaustionError(t *testing.T) {
	r := newTestResolver(t, Config{Transport: deadTransport})
	ctx := WithRetryBudget(context.Background(), 1)
	_, err := r.engine.Fetch(ctx, nil, []transport.Addr{"10.0.0.1", "10.0.0.2"},
		dnswire.MustName("x."), dnswire.TypeA)
	if !errors.Is(err, errBudgetExhausted) {
		t.Errorf("error = %v, want errBudgetExhausted in the chain", err)
	}
	if c := r.Counters(); c.BudgetExhausted != 1 {
		t.Errorf("BudgetExhausted = %d, want 1", c.BudgetExhausted)
	}
}

// TestConcurrentQIDsUnique checks that concurrent queries never share a
// query ID within a window of outstanding queries.
func TestConcurrentQIDsUnique(t *testing.T) {
	r := newTestResolver(t, Config{})
	const n = 1000
	ids := make([]uint16, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = r.engine.nextQID()
		}(i)
	}
	wg.Wait()
	seen := make(map[uint16]bool, n)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate query ID %d within %d concurrent queries", id, n)
		}
		seen[id] = true
	}
}
