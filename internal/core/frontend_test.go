package core

import (
	"testing"
	"time"

	"resilientdns/internal/attack"
	"resilientdns/internal/dnswire"
)

func TestFrontendAnswersStubQuery(t *testing.T) {
	f := newFixture(t, Config{RefreshTTL: true})
	q := dnswire.NewQuery(77, dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
	q.Flags.RecursionDesired = true
	resp := f.cs.HandleQuery(q)
	if resp.ID != 77 || !resp.Flags.Response {
		t.Fatalf("resp header = %+v", resp)
	}
	if !resp.Flags.RecursionAvailable {
		t.Error("RA not set")
	}
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answer) != 1 {
		t.Fatalf("resp = %v", resp)
	}
	if resp.Answer[0].Data.String() != "10.9.9.9" {
		t.Errorf("answer = %v", resp.Answer)
	}
}

func TestFrontendNXDomain(t *testing.T) {
	f := newFixture(t, Config{})
	q := dnswire.NewQuery(1, dnswire.MustName("missing.ucla.edu."), dnswire.TypeA)
	resp := f.cs.HandleQuery(q)
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v, want NXDOMAIN", resp.RCode)
	}
}

func TestFrontendServFailWhenUnresolvable(t *testing.T) {
	f := newFixture(t, Config{})
	// Root and TLDs down, cold cache: resolution fails → SERVFAIL.
	f.net.SetAttack(attack.RootAndTLDs(epoch, 6*time.Hour, []dnswire.Name{
		dnswire.Root, dnswire.MustName("edu."), dnswire.MustName("com."),
	}))
	q := dnswire.NewQuery(1, dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
	resp := f.cs.HandleQuery(q)
	if resp.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %v, want SERVFAIL", resp.RCode)
	}
}

func TestFrontendRejectsBadQueries(t *testing.T) {
	f := newFixture(t, Config{})
	resp := f.cs.HandleQuery(&dnswire.Message{ID: 5})
	if resp.RCode != dnswire.RCodeFormErr {
		t.Errorf("no-question rcode = %v, want FORMERR", resp.RCode)
	}
	q := dnswire.NewQuery(6, dnswire.MustName("a.edu."), dnswire.TypeA)
	q.Question[0].Class = dnswire.ClassCH
	resp = f.cs.HandleQuery(q)
	if resp.RCode != dnswire.RCodeRefused {
		t.Errorf("CH-class rcode = %v, want REFUSED", resp.RCode)
	}
}

func TestFrontendDecrementsTTLOnCachedAnswers(t *testing.T) {
	f := newFixture(t, Config{})
	q := dnswire.NewQuery(1, dnswire.MustName("www.ucla.edu."), dnswire.TypeA)
	f.cs.HandleQuery(q)
	f.clock.Advance(100 * time.Second)
	resp := f.cs.HandleQuery(q)
	if len(resp.Answer) != 1 {
		t.Fatalf("resp = %v", resp)
	}
	if got := resp.Answer[0].TTL; got != 200 {
		t.Errorf("cached answer TTL = %d, want 200 (300s original - 100s elapsed)", got)
	}
}
