package dnswire

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"sync"
)

// Message is a complete DNS message: header flags plus the four sections.
type Message struct {
	ID     uint16
	Flags  Flags
	RCode  RCode
	Opcode Opcode

	Question   []Question
	Answer     []RR
	Authority  []RR
	Additional []RR
}

// Flags holds the single-bit header flags of a DNS message.
type Flags struct {
	Response           bool // QR
	Authoritative      bool // AA
	Truncated          bool // TC
	RecursionDesired   bool // RD
	RecursionAvailable bool // RA
	AuthenticData      bool // AD
	CheckingDisabled   bool // CD
}

// MaxUDPPayload is the classic maximum DNS-over-UDP message size.
const MaxUDPPayload = 512

// headerLen is the fixed size of a DNS message header.
const headerLen = 12

var (
	// ErrTruncatedMessage reports a message shorter than its header claims.
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
	// ErrCompressionLoop reports a compression-pointer cycle.
	ErrCompressionLoop = errors.New("dnswire: compression pointer loop")
	// ErrTrailingBytes reports unconsumed bytes after the last section.
	ErrTrailingBytes = errors.New("dnswire: trailing bytes after message")
)

// NewQuery builds a standard query message for one question.
func NewQuery(id uint16, name Name, qtype Type) *Message {
	return &Message{
		ID:       id,
		Question: []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
}

// EchoesQuestion reports whether resp echoes query's question section:
// the response's first question must match the query's (qname, qtype,
// qclass) exactly. A matching 16-bit ID alone leaves a 1-in-65536
// off-path spoofing window per guess; requiring the question echo forces
// an attacker to also know which name is being resolved. Responses that
// carry no question section at all are rejected. Names are canonical
// (lower-case) on both sides, so comparison is exact. A query with no
// question trivially matches.
func EchoesQuestion(query, resp *Message) bool {
	if len(query.Question) == 0 {
		return true
	}
	if len(resp.Question) == 0 {
		return false
	}
	q, r := query.Question[0], resp.Question[0]
	return q.Name == r.Name && q.Type == r.Type && q.Class == r.Class
}

// Reply builds a skeleton response to q, echoing its ID and question and
// setting the QR bit.
func (m *Message) Reply() *Message {
	r := &Message{
		ID:     m.ID,
		Opcode: m.Opcode,
		Flags: Flags{
			Response:         true,
			RecursionDesired: m.Flags.RecursionDesired,
		},
	}
	r.Question = append(r.Question, m.Question...)
	return r
}

// String renders the message in a dig-like textual form, for logs and
// examples.
func (m *Message) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, ";; id=%d opcode=%s rcode=%s", m.ID, m.Opcode, m.RCode)
	if m.Flags.Response {
		b.WriteString(" qr")
	}
	if m.Flags.Authoritative {
		b.WriteString(" aa")
	}
	if m.Flags.Truncated {
		b.WriteString(" tc")
	}
	if m.Flags.RecursionDesired {
		b.WriteString(" rd")
	}
	if m.Flags.RecursionAvailable {
		b.WriteString(" ra")
	}
	b.WriteString("\n")
	for _, q := range m.Question {
		fmt.Fprintf(&b, ";%s\n", q)
	}
	writeSection := func(label string, rrs []RR) {
		if len(rrs) == 0 {
			return
		}
		fmt.Fprintf(&b, ";; %s:\n", label)
		for _, rr := range rrs {
			fmt.Fprintf(&b, "%s\n", rr)
		}
	}
	writeSection("ANSWER", m.Answer)
	writeSection("AUTHORITY", m.Authority)
	writeSection("ADDITIONAL", m.Additional)
	return b.String()
}

// TruncatedCopy returns a copy of the message with the record sections
// dropped and the TC bit set, for serving over size-limited UDP (the
// client retries over TCP). OPT pseudo-records survive the truncation:
// RFC 6891 §7 requires a response to an EDNS0 query to remain an EDNS0
// response even when truncated.
func (m *Message) TruncatedCopy() *Message {
	t := &Message{
		ID:     m.ID,
		Flags:  m.Flags,
		RCode:  m.RCode,
		Opcode: m.Opcode,
	}
	t.Flags.Truncated = true
	t.Question = append(t.Question, m.Question...)
	for _, rr := range m.Additional {
		if rr.Type() == TypeOPT {
			t.Additional = append(t.Additional, rr)
		}
	}
	return t
}

// Packer accumulates the wire encoding of messages and tracks name
// compression targets. A Packer is reusable: Reset (or Pack, which
// resets implicitly) clears the output and compression state while
// keeping the allocated buffer and map, so a long-lived Packer encodes
// messages without steady-state allocation. The zero value is ready to
// use. A Packer must not be used concurrently.
type Packer struct {
	buf []byte
	// base is the offset in buf where the current message starts;
	// compression pointers are relative to it (AppendPack may start
	// mid-buffer, e.g. after a TCP length prefix).
	base int
	// ptr maps a canonical name to the message-relative offset of its
	// first occurrence.
	ptr map[Name]int
	// noCompress disables pointer emission entirely (DNSSEC canonical
	// form, RFC 4034 §6.2).
	noCompress bool
}

// Reset discards the accumulated output and compression state, keeping
// the buffer and map capacity for reuse.
func (p *Packer) Reset() {
	p.buf = p.buf[:0]
	p.base = 0
	clear(p.ptr)
}

// Pack resets the Packer and encodes m into its internal buffer. The
// returned slice is owned by the Packer and valid only until the next
// Pack or Reset call; callers that need the bytes beyond that must copy.
func (p *Packer) Pack(m *Message) ([]byte, error) {
	p.Reset()
	if err := p.pack(m); err != nil {
		return nil, err
	}
	return p.buf, nil
}

// packerPool recycles the compression state behind Message.AppendPack so
// the convenience API allocates nothing beyond the caller's destination
// buffer in steady state.
var packerPool = sync.Pool{New: func() any { return new(Packer) }}

func (p *Packer) appendUint16(v uint16) {
	p.buf = append(p.buf, byte(v>>8), byte(v))
}

func (p *Packer) appendUint32(v uint32) {
	p.buf = append(p.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// appendCompressedName appends n, using a compression pointer when a
// suffix of n has already been written, and recording new suffixes.
// Suffixes are substrings of the canonical name, so tracking them
// allocates no memory beyond the map itself.
func (p *Packer) appendCompressedName(n Name) error {
	if n == "" {
		return errors.New("dnswire: empty name")
	}
	if p.noCompress {
		var err error
		p.buf, err = appendName(p.buf, n)
		return err
	}
	s := string(n)
	for start := 0; start < len(s); {
		suffix := n[start:]
		if suffix == Root {
			break // the root's empty name is never a compression target
		}
		off, ok := p.ptr[suffix]
		if ok && off <= 0x3FFF {
			p.appendUint16(0xC000 | uint16(off))
			return nil
		}
		if !ok {
			if p.ptr == nil {
				p.ptr = make(map[Name]int)
			}
			p.ptr[suffix] = len(p.buf) - p.base
		}
		var label string
		if dot := strings.IndexByte(s[start:], '.'); dot < 0 {
			label = s[start:]
			start = len(s)
		} else {
			label = s[start : start+dot]
			start += dot + 1
		}
		if len(label) > MaxLabelLen {
			return ErrLabelTooLong
		}
		p.buf = append(p.buf, byte(len(label)))
		p.buf = append(p.buf, label...)
	}
	p.buf = append(p.buf, 0)
	return nil
}

// appendUncompressedName appends n without using or creating pointers
// (required for RDATA of types not covered by RFC 1035 compression rules).
func (p *Packer) appendUncompressedName(n Name) error {
	var err error
	p.buf, err = appendName(p.buf, n)
	return err
}

// Pack encodes the message into wire format with name compression. The
// returned buffer is freshly allocated and owned by the caller; hot
// paths that can recycle buffers should prefer AppendPack or a reused
// Packer.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(make([]byte, 0, 512))
}

// AppendPack appends the wire encoding of m to dst and returns the
// extended slice (reallocated if dst lacks capacity, like append).
// Compression pointers are relative to len(dst), so a caller may pack
// after a prefix — e.g. the TCP two-byte length — in the same buffer.
// The packing scratch state is pooled; steady-state callers that pass a
// recycled dst allocate nothing.
func (m *Message) AppendPack(dst []byte) ([]byte, error) {
	p := packerPool.Get().(*Packer)
	p.buf = dst
	p.base = len(dst)
	err := p.pack(m)
	out := p.buf
	// Drop the buffer reference (it belongs to the caller) and clear the
	// compression map (its keys are substrings of m's names) before
	// pooling the scratch state.
	p.buf = nil
	p.base = 0
	clear(p.ptr)
	packerPool.Put(p)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// pack appends the wire encoding of one message to p.buf, with p.base
// already marking the message start.
func (p *Packer) pack(m *Message) error {
	p.appendUint16(m.ID)

	var flags uint16
	if m.Flags.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Opcode&0xF) << 11
	if m.Flags.Authoritative {
		flags |= 1 << 10
	}
	if m.Flags.Truncated {
		flags |= 1 << 9
	}
	if m.Flags.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Flags.RecursionAvailable {
		flags |= 1 << 7
	}
	if m.Flags.AuthenticData {
		flags |= 1 << 5
	}
	if m.Flags.CheckingDisabled {
		flags |= 1 << 4
	}
	flags |= uint16(m.RCode & 0xF)
	p.appendUint16(flags)

	for _, n := range []int{len(m.Question), len(m.Answer), len(m.Authority), len(m.Additional)} {
		if n > 0xFFFF {
			return errors.New("dnswire: section too large")
		}
		p.appendUint16(uint16(n))
	}

	for _, q := range m.Question {
		if err := p.appendCompressedName(q.Name); err != nil {
			return fmt.Errorf("packing question %s: %w", q.Name, err)
		}
		p.appendUint16(uint16(q.Type))
		p.appendUint16(uint16(q.Class))
	}
	for _, section := range [][]RR{m.Answer, m.Authority, m.Additional} {
		for _, rr := range section {
			if err := p.appendRR(rr); err != nil {
				return fmt.Errorf("packing %s %s: %w", rr.Name, rr.Type(), err)
			}
		}
	}
	return nil
}

func (p *Packer) appendRR(rr RR) error {
	if rr.Data == nil {
		return errors.New("dnswire: RR with nil data")
	}
	if err := p.appendCompressedName(rr.Name); err != nil {
		return err
	}
	p.appendUint16(uint16(rr.Type()))
	p.appendUint16(uint16(rr.Class))
	p.appendUint32(rr.TTL)
	// Reserve RDLENGTH, fill after encoding RDATA.
	lenOff := len(p.buf)
	p.appendUint16(0)
	if err := rr.Data.appendTo(p); err != nil {
		return err
	}
	rdlen := len(p.buf) - lenOff - 2
	if rdlen > 0xFFFF {
		return errors.New("dnswire: RDATA too long")
	}
	p.buf[lenOff] = byte(rdlen >> 8)
	p.buf[lenOff+1] = byte(rdlen)
	return nil
}

// nameCacheSize bounds the per-message decoded-name cache. Messages
// rarely carry more distinct names than this; past the bound, names
// still decode correctly, just without reuse.
const nameCacheSize = 24

// unpacker walks a wire-format message. It is used by value on the
// stack; msg is the unpacker's private arena copy of the wire, from
// which the decoded Message's byte-slice fields are sliced directly.
type unpacker struct {
	msg []byte
	off int

	// nameBuf is the scratch the decoder lowercases labels into before
	// the single string conversion that builds each Name; it lives in
	// the (stack-allocated) unpacker so decoding allocates nothing
	// beyond the resulting string.
	nameBuf [MaxNameWireLen]byte

	// names caches decoded names by the offset of their encoding, so a
	// name reached again through a compression pointer (an RR owner
	// pointing at the question, NS targets sharing a zone suffix) is
	// returned without re-decoding or re-allocating.
	names  [nameCacheSize]cachedName
	nNames int
}

type cachedName struct {
	off  int32
	end  int32 // offset just past the encoding at off; 0 = pointer-target entry
	name Name
}

func (u *unpacker) uint16() (uint16, error) {
	if u.off+2 > len(u.msg) {
		return 0, ErrTruncatedMessage
	}
	v := uint16(u.msg[u.off])<<8 | uint16(u.msg[u.off+1])
	u.off += 2
	return v, nil
}

func (u *unpacker) uint32() (uint32, error) {
	if u.off+4 > len(u.msg) {
		return 0, ErrTruncatedMessage
	}
	v := uint32(u.msg[u.off])<<24 | uint32(u.msg[u.off+1])<<16 |
		uint32(u.msg[u.off+2])<<8 | uint32(u.msg[u.off+3])
	u.off += 4
	return v, nil
}

// cachedAt returns the already-decoded name whose encoding starts at off.
func (u *unpacker) cachedAt(off int) (Name, bool) {
	for i := 0; i < u.nNames; i++ {
		if u.names[i].off == int32(off) {
			return u.names[i].name, true
		}
	}
	return "", false
}

func (u *unpacker) cacheName(off, end int, n Name) {
	if u.nNames < nameCacheSize {
		u.names[u.nNames] = cachedName{off: int32(off), end: int32(end), name: n}
		u.nNames++
	}
}

// name decodes a possibly-compressed name starting at the current offset.
func (u *unpacker) name() (Name, error) {
	start := u.off
	for i := 0; i < u.nNames; i++ {
		if c := &u.names[i]; c.off == int32(start) && c.end > 0 {
			u.off = int(c.end)
			return c.name, nil
		}
	}
	n, end, err := u.decodeNameAt(start)
	if err != nil {
		return "", err
	}
	u.off = end
	u.cacheName(start, end, n)
	// When the encoding is a bare compression pointer, the same target
	// is typically referenced again (repeated RR owners); cache it under
	// the target offset too so those later references hit.
	if b := u.msg[start]; b&0xC0 == 0xC0 && end == start+2 {
		target := int(b&0x3F)<<8 | int(u.msg[start+1])
		if _, ok := u.cachedAt(target); !ok {
			u.cacheName(target, 0, n)
		}
	}
	return n, nil
}

// decodeNameAt decodes the name at start, following compression
// pointers, lowercasing and validating labels in place. It returns the
// canonical name and the offset just past the name's first encoding.
// The one allocation is the resulting string.
func (u *unpacker) decodeNameAt(start int) (Name, int, error) {
	msg := u.msg
	buf := u.nameBuf[:0]
	off := start
	ptrBudget := len(msg) // any longer chain must contain a loop
	end := -1             // offset after the name at the original position
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedMessage
		}
		b := msg[off]
		switch {
		case b == 0:
			if end < 0 {
				end = off + 1
			}
			if len(buf) == 0 {
				return Root, end, nil
			}
			return Name(buf), end, nil
		case b&0xC0 == 0xC0:
			if off+2 > len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			if end < 0 {
				end = off + 2
			}
			target := int(b&0x3F)<<8 | int(msg[off+1])
			if target >= off {
				return "", 0, fmt.Errorf("%w: forward pointer", ErrCompressionLoop)
			}
			// A cached name at the target finishes the decode: append
			// would just re-walk bytes that produced it.
			if tail, ok := u.cachedAt(target); ok {
				if len(buf)+len(tail) > MaxNameWireLen-1 {
					return "", 0, fmt.Errorf("%w: %q", ErrNameTooLong, buf)
				}
				if len(buf) == 0 {
					return tail, end, nil
				}
				if !tail.IsRoot() {
					buf = append(buf, tail...)
				}
				return Name(buf), end, nil
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrCompressionLoop
			}
			off = target
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("dnswire: reserved label type 0x%02x", b&0xC0)
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			// One pass per label: lowercase, validate, and copy. The
			// wire bound (len ≤ 63) already enforces MaxLabelLen.
			if len(buf)+l+1 > MaxNameWireLen-1 {
				return "", 0, fmt.Errorf("%w: %q", ErrNameTooLong, msg[off+1:off+1+l])
			}
			for _, c := range msg[off+1 : off+1+l] {
				if c >= 'A' && c <= 'Z' {
					c += 'a' - 'A'
				}
				if !labelCharOK(c) {
					return "", 0, fmt.Errorf("%w: %q", ErrBadLabel, msg[off+1:off+1+l])
				}
				buf = append(buf, c)
			}
			buf = append(buf, '.')
			off += 1 + l
		}
	}
}

// decodeName decodes a name at off in msg, following compression pointers.
// It returns the name and the offset just past the name's first encoding.
func decodeName(msg []byte, off int) (Name, int, error) {
	u := unpacker{msg: msg}
	return u.decodeNameAt(off)
}

// Header is a decoded DNS message header, the 12 fixed bytes every
// message starts with. It lets a server classify a packet (query vs
// response, opcode, ID to echo) even when the rest fails to parse.
type Header struct {
	ID     uint16
	Flags  Flags
	Opcode Opcode
	RCode  RCode
}

// UnpackHeader decodes just the fixed header of a wire-format message.
// It fails only when b is shorter than the 12-byte header.
func UnpackHeader(b []byte) (Header, error) {
	if len(b) < headerLen {
		return Header{}, fmt.Errorf("%w: %d-byte header", ErrTruncatedMessage, len(b))
	}
	var h Header
	h.ID = uint16(b[0])<<8 | uint16(b[1])
	flags := uint16(b[2])<<8 | uint16(b[3])
	h.Flags, h.Opcode, h.RCode = decodeFlags(flags)
	return h, nil
}

// decodeFlags splits the header's second 16-bit word into its flag bits,
// opcode, and rcode.
func decodeFlags(flags uint16) (Flags, Opcode, RCode) {
	var f Flags
	f.Response = flags&(1<<15) != 0
	f.Authoritative = flags&(1<<10) != 0
	f.Truncated = flags&(1<<9) != 0
	f.RecursionDesired = flags&(1<<8) != 0
	f.RecursionAvailable = flags&(1<<7) != 0
	f.AuthenticData = flags&(1<<5) != 0
	f.CheckingDisabled = flags&(1<<4) != 0
	return f, Opcode(flags >> 11 & 0xF), RCode(flags & 0xF)
}

// sectionCap bounds a section's preallocation by what the remaining
// bytes could possibly hold (minBytes per entry), so a forged count in a
// short packet cannot force a huge allocation before parsing fails.
func sectionCap(count uint16, remaining, minBytes int) int {
	if c := remaining / minBytes; int(count) > c {
		return c
	}
	return int(count)
}

// Unpack decodes a wire-format DNS message.
//
// Ownership: the returned Message owns all of its data. Unpack makes
// exactly one private copy of the wire; every byte-slice RData field
// (OPT options, DNSSEC key/digest/signature material, Unknown raw
// payloads) is sliced from that copy rather than copied again, and
// every Name is a freshly built string. The caller may therefore reuse
// or recycle b — including returning a pooled read buffer — the moment
// Unpack returns, and the Message stays valid for as long as any of its
// records are retained (each retained slice keeps the one backing copy
// alive).
func Unpack(b []byte) (*Message, error) {
	u := unpacker{msg: append([]byte(nil), b...)}
	m := &Message{}

	var err error
	if m.ID, err = u.uint16(); err != nil {
		return nil, err
	}
	flags, err := u.uint16()
	if err != nil {
		return nil, err
	}
	m.Flags, m.Opcode, m.RCode = decodeFlags(flags)

	var counts [4]uint16
	for i := range counts {
		if counts[i], err = u.uint16(); err != nil {
			return nil, err
		}
	}

	if counts[0] > 0 {
		// Smallest question: 1-byte root name + type + class.
		m.Question = make([]Question, 0, sectionCap(counts[0], len(u.msg)-u.off, 5))
	}
	for i := 0; i < int(counts[0]); i++ {
		var q Question
		if q.Name, err = u.name(); err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		t, err := u.uint16()
		if err != nil {
			return nil, err
		}
		c, err := u.uint16()
		if err != nil {
			return nil, err
		}
		q.Type, q.Class = Type(t), Class(c)
		m.Question = append(m.Question, q)
	}

	sections := [3]*[]RR{&m.Answer, &m.Authority, &m.Additional}
	for si, dst := range sections {
		if counts[si+1] == 0 {
			continue
		}
		// Smallest RR: 1-byte name + fixed 10-byte body, empty RDATA.
		*dst = make([]RR, 0, sectionCap(counts[si+1], len(u.msg)-u.off, 11))
		for i := 0; i < int(counts[si+1]); i++ {
			rr, err := u.rr()
			if err != nil {
				return nil, fmt.Errorf("section %d record %d: %w", si+1, i, err)
			}
			*dst = append(*dst, rr)
		}
	}
	if u.off != len(u.msg) {
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailingBytes, len(u.msg)-u.off)
	}
	return m, nil
}

func (u *unpacker) rr() (RR, error) {
	var rr RR
	name, err := u.name()
	if err != nil {
		return rr, err
	}
	rr.Name = name
	t, err := u.uint16()
	if err != nil {
		return rr, err
	}
	c, err := u.uint16()
	if err != nil {
		return rr, err
	}
	rr.Class = Class(c)
	ttl, err := u.uint32()
	if err != nil {
		return rr, err
	}
	rr.TTL = ttl
	rdlen, err := u.uint16()
	if err != nil {
		return rr, err
	}
	if u.off+int(rdlen) > len(u.msg) {
		return rr, ErrTruncatedMessage
	}
	rdEnd := u.off + int(rdlen)
	rr.Data, err = u.rdata(Type(t), rdEnd)
	if err != nil {
		return rr, err
	}
	if u.off != rdEnd {
		return rr, fmt.Errorf("dnswire: RDATA length mismatch for %s", Type(t))
	}
	return rr, nil
}

// arena returns the RDATA bytes from the current offset to rdEnd as a
// capacity-clamped slice of the unpacker's private wire copy — the
// zero-copy half of the ownership contract documented on Unpack. An
// empty range returns nil so round-tripped records compare equal to
// their hand-built forms.
func (u *unpacker) arena(rdEnd int) []byte {
	if u.off == rdEnd {
		return nil
	}
	return u.msg[u.off:rdEnd:rdEnd]
}

func (u *unpacker) rdata(t Type, rdEnd int) (RData, error) {
	switch t {
	case TypeA:
		if rdEnd-u.off != 4 {
			return nil, fmt.Errorf("dnswire: A RDATA of length %d", rdEnd-u.off)
		}
		var v4 [4]byte
		copy(v4[:], u.msg[u.off:rdEnd])
		u.off = rdEnd
		return A{Addr: netip.AddrFrom4(v4)}, nil
	case TypeAAAA:
		if rdEnd-u.off != 16 {
			return nil, fmt.Errorf("dnswire: AAAA RDATA of length %d", rdEnd-u.off)
		}
		var v6 [16]byte
		copy(v6[:], u.msg[u.off:rdEnd])
		u.off = rdEnd
		return AAAA{Addr: netip.AddrFrom16(v6)}, nil
	case TypeNS:
		n, err := u.name()
		return NS{Host: n}, err
	case TypeCNAME:
		n, err := u.name()
		return CNAME{Target: n}, err
	case TypePTR:
		n, err := u.name()
		return PTR{Target: n}, err
	case TypeSOA:
		var s SOA
		var err error
		if s.MName, err = u.name(); err != nil {
			return nil, err
		}
		if s.RName, err = u.name(); err != nil {
			return nil, err
		}
		for _, dst := range []*uint32{&s.Serial, &s.Refresh, &s.Retry, &s.Expire, &s.Minimum} {
			if *dst, err = u.uint32(); err != nil {
				return nil, err
			}
		}
		return s, nil
	case TypeMX:
		pref, err := u.uint16()
		if err != nil {
			return nil, err
		}
		host, err := u.name()
		if err != nil {
			return nil, err
		}
		return MX{Preference: pref, Host: host}, nil
	case TypeTXT:
		var t TXT
		for u.off < rdEnd {
			l := int(u.msg[u.off])
			if u.off+1+l > rdEnd {
				return nil, ErrTruncatedMessage
			}
			t.Strings = append(t.Strings, string(u.msg[u.off+1:u.off+1+l]))
			u.off += 1 + l
		}
		if len(t.Strings) == 0 {
			return nil, errors.New("dnswire: empty TXT RDATA")
		}
		return t, nil
	case TypeSRV:
		var s SRV
		var err error
		if s.Priority, err = u.uint16(); err != nil {
			return nil, err
		}
		if s.Weight, err = u.uint16(); err != nil {
			return nil, err
		}
		if s.Port, err = u.uint16(); err != nil {
			return nil, err
		}
		if s.Target, err = u.name(); err != nil {
			return nil, err
		}
		return s, nil
	case TypeOPT:
		o := OPT{Options: u.arena(rdEnd)}
		u.off = rdEnd
		return o, nil
	case TypeDNSKEY:
		var k DNSKEY
		var err error
		if k.Flags, err = u.uint16(); err != nil {
			return nil, err
		}
		if u.off+2 > rdEnd {
			return nil, ErrTruncatedMessage
		}
		k.Protocol = u.msg[u.off]
		k.Algorithm = u.msg[u.off+1]
		u.off += 2
		k.PublicKey = u.arena(rdEnd)
		u.off = rdEnd
		return k, nil
	case TypeDS:
		var d DS
		var err error
		if d.KeyTag, err = u.uint16(); err != nil {
			return nil, err
		}
		if u.off+2 > rdEnd {
			return nil, ErrTruncatedMessage
		}
		d.Algorithm = u.msg[u.off]
		d.DigestType = u.msg[u.off+1]
		u.off += 2
		d.Digest = u.arena(rdEnd)
		u.off = rdEnd
		return d, nil
	case TypeRRSIG:
		var s RRSIG
		tc, err := u.uint16()
		if err != nil {
			return nil, err
		}
		s.TypeCovered = Type(tc)
		if u.off+2 > rdEnd {
			return nil, ErrTruncatedMessage
		}
		s.Algorithm = u.msg[u.off]
		s.Labels = u.msg[u.off+1]
		u.off += 2
		for _, dst := range []*uint32{&s.OrigTTL, &s.Expiration, &s.Inception} {
			if *dst, err = u.uint32(); err != nil {
				return nil, err
			}
		}
		if s.KeyTag, err = u.uint16(); err != nil {
			return nil, err
		}
		if s.SignerName, err = u.name(); err != nil {
			return nil, err
		}
		if u.off > rdEnd {
			return nil, ErrTruncatedMessage
		}
		s.Signature = u.arena(rdEnd)
		u.off = rdEnd
		return s, nil
	default:
		raw := Unknown{TypeCode: t, Raw: u.arena(rdEnd)}
		u.off = rdEnd
		return raw, nil
	}
}
