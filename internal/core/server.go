package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"resilientdns/internal/cache"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/resolve"
	"resilientdns/internal/simclock"
	"resilientdns/internal/transport"
)

// CachingServer is the paper's modified caching server (CS): the policy
// shell around the resolution pipeline in internal/resolve. The pipeline
// owns cache lookup, CNAME chasing, iteration, validation/ingest, and the
// stale fallback, plus the single fetch engine every upstream exchange
// goes through; this type keeps what is policy rather than mechanism —
// request coalescing, renewal credit and the renewal scheduler, and the
// frontend counters — and wires itself into the pipeline via
// resolve.Hooks.
//
// It is safe for concurrent use: the cache is sharded internally, the
// remaining state is split into independently locked components, and no
// lock is ever held across a Transport.Exchange round-trip. Concurrent
// Resolve calls for the same (name, type) coalesce into one upstream
// resolution. The trace-driven simulator uses the same code
// single-threaded, where every operation stays deterministic.
//
// Lock hierarchy (a goroutine may only take locks downward in this list,
// and never holds one across upstream I/O):
//
//	flightMu > renewMu > cache shard locks
//	the resolver's negMu, parentMu, secMu are leaves taken on their own.
type CachingServer struct {
	cfg      Config
	cache    *cache.Cache
	resolver *resolve.Resolver

	// renewMu guards the renewal scheduler: per-zone credit, the due
	// queue, and the scheduled set.
	renewMu   sync.Mutex
	credits   map[dnswire.Name]float64
	renew     renewQueue
	scheduled map[dnswire.Name]bool

	// flightMu guards the in-flight resolution table.
	flightMu sync.Mutex
	flight   map[cache.Key]*flightCall

	stats statCounters
}

// renewLead is how far before expiry a renewal refetch fires ("just
// before they are ready to expire", §4).
const renewLead = time.Second

// NewCachingServer builds a caching server from cfg.
func NewCachingServer(cfg Config) (*CachingServer, error) {
	if cfg.Transport == nil {
		return nil, errors.New("core: Config.Transport is required")
	}
	if len(cfg.RootHints) == 0 {
		return nil, errors.New("core: Config.RootHints is required")
	}
	if cfg.ValidateDNSSEC && len(cfg.TrustAnchors) == 0 {
		return nil, errors.New("core: ValidateDNSSEC requires TrustAnchors")
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	cs := &CachingServer{
		cfg: cfg,
		cache: cache.New(cache.Config{
			Clock:           cfg.Clock,
			MaxTTL:          cfg.MaxTTL,
			RefreshInfraTTL: cfg.RefreshTTL,
			OnGap:           cfg.OnGap,
			OnChange:        cfg.OnCacheChange,
			KeepStale:       cfg.ServeStale,
		}),
		credits:   make(map[dnswire.Name]float64),
		scheduled: make(map[dnswire.Name]bool),
		flight:    make(map[cache.Key]*flightCall),
	}
	rootAddrs := make([]transport.Addr, 0, len(cfg.RootHints))
	for _, h := range cfg.RootHints {
		rootAddrs = append(rootAddrs, h.Addr)
	}
	hooks := resolve.Hooks{ZoneQueried: cs.updateCredit}
	if cfg.Renewal != nil {
		hooks.InfraCached = cs.scheduleRenewal
	}
	if cfg.PeerFetch != nil {
		hooks.PeerFetch = cfg.PeerFetch
	}
	r, err := resolve.New(resolve.Config{
		Transport:             cfg.Transport,
		Clock:                 cfg.Clock,
		Cache:                 cs.cache,
		RootAddrs:             rootAddrs,
		NegativeTTL:           cfg.NegativeTTL,
		ServeStale:            cfg.ServeStale,
		Prefetch:              cfg.Prefetch,
		AsyncPrefetch:         cfg.AsyncPrefetch,
		PrefetchWorkers:       cfg.PrefetchWorkers,
		PrefetchQueue:         cfg.PrefetchQueue,
		MaxReferrals:          cfg.MaxReferrals,
		MaxCNAME:              cfg.MaxCNAME,
		MaxGlueFetches:        cfg.MaxGlueFetches,
		ValidateDNSSEC:        cfg.ValidateDNSSEC,
		TrustAnchors:          cfg.TrustAnchors,
		AdvertiseEDNS0:        cfg.AdvertiseEDNS0,
		ParentRecheckInterval: cfg.ParentRecheckInterval,
		AddrMapper:            cfg.AddrMapper,
		Upstream:              cfg.Upstream,
		Hooks:                 hooks,
		TraceSink:             cfg.TraceSink,
	})
	if err != nil {
		return nil, err
	}
	cs.resolver = r
	return cs, nil
}

// Close releases background resources (the async prefetch pool, when
// enabled). Safe to call more than once.
func (cs *CachingServer) Close() { cs.resolver.Close() }

// CacheStats reports cache occupancy after sweeping expired entries.
func (cs *CachingServer) CacheStats() cache.Stats {
	cs.cache.SweepExpired()
	return cs.cache.Stats()
}

// Cache exposes the underlying cache for tests and examples.
func (cs *CachingServer) Cache() *cache.Cache { return cs.cache }

// Resolver exposes the resolution pipeline: the trace/latency surface
// (LatencySnapshots), the fetch engine, and the refetch path used by
// diagnostics and tests.
func (cs *CachingServer) Resolver() *resolve.Resolver { return cs.resolver }

// SecureZone reports whether zname currently has a validated key chain
// (true), is known insecure (false), with known=false when undetermined.
func (cs *CachingServer) SecureZone(zname dnswire.Name) (secure, known bool) {
	return cs.resolver.SecureZone(zname)
}

// Resolve answers one stub-resolver query. Concurrent calls for the same
// (name, type) share a single upstream resolution. When a TraceSink is
// configured the query gets a trace covering its cache hot path and
// coalescing outcome; the shared flight carries its own trace (it serves
// many queries, so its timings belong to no single caller).
func (cs *CachingServer) Resolve(ctx context.Context, qname dnswire.Name, qtype dnswire.Type) (*Result, error) {
	cs.stats.queriesIn.Add(1)
	tr := cs.resolver.NewTrace(resolve.KindQuery, qname, qtype)
	res, err := cs.resolver.Lookup(tr, qname, qtype)
	if err == nil && res == nil {
		res, err = cs.resolveCoalesced(ctx, tr, qname, qtype)
	}
	cs.resolver.FinishTrace(tr, res, err)
	if err != nil {
		cs.stats.failed.Add(1)
		return nil, err
	}
	cs.stats.resolved.Add(1)
	if res.FromCache {
		cs.stats.cacheAnswered.Add(1)
	}
	return res, nil
}

// ResolveCacheOnly answers one stub-resolver query from cached data
// alone — live cache, negative cache, then stale records when serve-stale
// is on — never touching upstream. It serves RD=0 probes and the guard's
// overload degraded mode. A nil result (no error) means nothing cached
// could answer; the caller picks the refusal rcode.
func (cs *CachingServer) ResolveCacheOnly(qname dnswire.Name, qtype dnswire.Type) (*Result, error) {
	cs.stats.queriesIn.Add(1)
	tr := cs.resolver.NewTrace(resolve.KindQuery, qname, qtype)
	res, err := cs.resolver.LookupCacheOnly(tr, qname, qtype)
	cs.resolver.FinishTrace(tr, res, err)
	if err != nil {
		cs.stats.failed.Add(1)
		return nil, err
	}
	if res == nil {
		cs.stats.failed.Add(1)
		return nil, nil
	}
	cs.stats.resolved.Add(1)
	cs.stats.cacheAnswered.Add(1)
	return res, nil
}

// updateCredit applies the renewal policy on a query to zname; it is the
// pipeline's ZoneQueried hook.
func (cs *CachingServer) updateCredit(zname dnswire.Name) {
	if cs.cfg.Renewal == nil || zname.IsRoot() {
		return
	}
	ttl := cache.DefaultMaxTTL
	if e := cs.cache.Peek(zname, dnswire.TypeNS); e != nil {
		ttl = e.OrigTTL
	}
	cs.renewMu.Lock()
	cs.credits[zname] = cs.cfg.Renewal.Update(cs.credits[zname], ttl)
	cs.renewMu.Unlock()
}
