package experiments

import (
	"context"
	"fmt"
	"time"

	"resilientdns/internal/core"
	"resilientdns/internal/dnswire"
	"resilientdns/internal/mesh"
	"resilientdns/internal/simclock"
	"resilientdns/internal/simnet"
	"resilientdns/internal/workload"
)

// Mesh is the fleet-blackout experiment: the same trace is served by one
// solo caching server, by three independent servers with clients sharded
// across them, and by the same three servers joined into a cooperative
// mesh (rendezvous-hashed renewal ownership, IRR gossip, peer-fetch
// fallback). All variants run the combined refresh+A-LFU scheme through
// a 24-hour root+TLD blackout.
//
// The fleet claims under test: the mesh fleet's aggregate upstream
// renewal traffic collapses to roughly one owner refetch per zone per
// TTL (at least 2x below the no-mesh fleet), and its attack-window
// failure rate drops below the no-mesh fleet's because gossip keeps all
// three caches warm and peer fetch recovers answers a member never
// cached itself.
//
// Registered as "mesh" but deliberately absent from ExperimentIDs(): it
// post-dates the frozen results_full.txt, so `dnssim -exp all` output
// stays byte-identical.
func (s *Suite) Mesh() (*Table, error) {
	const attackDur = 24 * time.Hour
	tr := s.traces[0]

	type variant struct {
		label    string
		n        int
		withMesh bool
	}
	variants := []variant{
		{"1 instance, all clients", 1, false},
		{"3 instances, no mesh", 3, false},
		{"3 instances, mesh", 3, true},
	}

	t := &Table{
		ID:      "mesh",
		Title:   fmt.Sprintf("Fleet behaviour through a %v root+TLD blackout, Refresh+A-LFU(5), clients sharded across instances (%s)", attackDur, tr.Label),
		Columns: []string{"fleet", "attack fail %", "renewal queries (aggregate)", "renewals deferred", "peer-fetch answered"},
		Notes: []string{
			"mesh fleet aggregate renewal traffic should be >=2x below the no-mesh fleet (one owner refetch per zone per TTL)",
			"mesh fleet attack failure rate should drop below the no-mesh fleet's: gossip warms all caches, peer fetch recovers the rest",
		},
	}
	for _, v := range variants {
		out, err := s.runMeshFleet(tr, attackDur, v.n, v.withMesh)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			v.label,
			pct(ratio(out.attackFail, out.attackQueries)),
			fmt.Sprintf("%d", out.renewalQueries),
			fmt.Sprintf("%d", out.renewalDeferred),
			fmt.Sprintf("%d", out.peerFetchAnswered),
		})
	}
	return t, nil
}

// meshOutcome aggregates one fleet variant's run.
type meshOutcome struct {
	attackQueries, attackFail uint64
	renewalQueries            uint64
	renewalDeferred           uint64
	peerFetchAnswered         uint64
}

// runMeshFleet replays tr against n caching servers (clients sharded by
// client id), optionally joined into a cooperative mesh over the
// deterministic MeshNet fabric sharing the trace's virtual clock.
func (s *Suite) runMeshFleet(tr workload.Trace, attackDur time.Duration, n int, withMesh bool) (meshOutcome, error) {
	var out meshOutcome
	clk := simclock.NewVirtual(tr.Start)
	net := simnet.New(clk, s.cfg.Seed)
	net.RTT = 0
	net.Timeout = 0
	s.baseTree.InstallOpt(net, true)
	sched := s.attackFor(s.baseTree, attackDur)
	net.SetAttack(sched)

	mnet := simnet.NewMeshNet(clk)
	mnet.RTT = 0
	mnet.Timeout = 0

	type member struct {
		cs   *core.CachingServer
		node *mesh.Node
	}
	var addrs []string
	for i := 0; i < n; i++ {
		addrs = append(addrs, fmt.Sprintf("10.9.0.%d:7946", i+1))
	}
	members := make([]*member, n)
	for i := 0; i < n; i++ {
		m := &member{}
		cfg := core.Config{
			Transport:  net,
			Clock:      clk,
			RootHints:  s.baseTree.RootHints,
			RefreshTTL: true,
			Renewal:    core.ALFU{C: 5, MaxDays: core.DefaultLFUMax(5)},
		}
		if withMesh {
			mm := m
			cfg.RenewalOwner = func(zone dnswire.Name) bool { return mm.node.OwnsRenewal(zone) }
			cfg.OnRenewed = func(zone dnswire.Name) { mm.node.GossipZone(zone) }
			cfg.PeerFetch = func(ctx context.Context, qname dnswire.Name, qtype dnswire.Type) *core.Result {
				msg := mm.node.PeerFetch(ctx, qname, qtype)
				if msg == nil {
					return nil
				}
				return &core.Result{RCode: msg.RCode, Answer: msg.Answer, Authority: msg.Authority, FromCache: true}
			}
		}
		cs, err := core.NewCachingServer(cfg)
		if err != nil {
			return out, fmt.Errorf("experiments: mesh: %w", err)
		}
		m.cs = cs
		if withMesh {
			var peers []string
			for _, a := range addrs {
				if a != addrs[i] {
					peers = append(peers, a)
				}
			}
			node, err := mesh.NewNode(mesh.Config{
				Self:         addrs[i],
				Key:          []byte("experiment-fleet-key"),
				Peers:        peers,
				Transport:    mnet.Bind(addrs[i]),
				Clock:        clk,
				Backend:      cs,
				OwnerRenewal: true,
			})
			if err != nil {
				return out, fmt.Errorf("experiments: mesh: %w", err)
			}
			m.node = node
			mnet.Register(addrs[i], node.HandleFrame)
		}
		members[i] = m
	}
	if withMesh {
		// One synchronous probe round confirms the full mesh before any
		// traffic flows; MeshNet RTT is zero so no virtual time passes.
		for _, m := range members {
			m.node.Tick(clk.Now())
		}
	}

	ctx := context.Background()
	for _, q := range tr.Queries {
		// Renewals due on any member before this query fire at their
		// exact instants, fleet-wide and in global time order, with mesh
		// probe rounds keeping failure detection current.
		for {
			var next time.Time
			any := false
			for _, m := range members {
				if due, ok := m.cs.NextRenewalDue(); ok && !due.After(q.At) && (!any || due.Before(next)) {
					next, any = due, true
				}
			}
			if !any {
				break
			}
			if next.After(clk.Now()) {
				clk.AdvanceTo(next)
			}
			for _, m := range members {
				if m.node != nil {
					m.node.Tick(clk.Now())
				}
				m.cs.ProcessDueRenewals(ctx, clk.Now())
			}
		}
		clk.AdvanceTo(q.At)
		cs := members[q.Client%n].cs
		_, err := cs.Resolve(ctx, q.Name, q.Type)
		if sched.Active(q.At) {
			out.attackQueries++
			if err != nil {
				out.attackFail++
			}
		}
	}
	for _, m := range members {
		st := m.cs.Stats()
		out.renewalQueries += st.RenewalQueries
		out.renewalDeferred += st.RenewalDeferred
		out.peerFetchAnswered += st.PeerFetchAnswered
	}
	return out, nil
}
