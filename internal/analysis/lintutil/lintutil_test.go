package lintutil

import "testing"

func TestPkgMatches(t *testing.T) {
	cases := []struct {
		path, patterns string
		want           bool
	}{
		{"resilientdns/internal/sim", "resilientdns/internal/sim", true},
		{"resilientdns/internal/simnet", "resilientdns/internal/sim", false},
		{"resilientdns/internal/sim", "a,resilientdns/internal/sim,b", true},
		{"resilientdns/internal/sim", "", false},
		{"resilientdns/internal/sim/sub", "resilientdns/internal/sim", false},
		{"resilientdns/internal/sim/sub", "resilientdns/internal/sim/...", true},
		{"resilientdns/internal/sim", "resilientdns/internal/sim/...", true},
		{"resilientdns/internal/simnet", "resilientdns/internal/sim/...", false},
		{"x", " x , y ", true},
	}
	for _, c := range cases {
		if got := PkgMatches(c.path, c.patterns); got != c.want {
			t.Errorf("PkgMatches(%q, %q) = %v, want %v", c.path, c.patterns, got, c.want)
		}
	}
}

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text string
		name string
		ok   bool
	}{
		{"//dnslint:ignore wallclock production clock impl", "wallclock", true},
		{"//dnslint:ignore wallclock", "", false},
		{"//dnslint:ignore", "", false},
		{"// dnslint:ignore wallclock reason", "", false},
		{"// ordinary comment", "", false},
	}
	for _, c := range cases {
		name, ok := parseIgnore(c.text)
		if name != c.name || ok != c.ok {
			t.Errorf("parseIgnore(%q) = (%q, %v), want (%q, %v)", c.text, name, ok, c.name, c.ok)
		}
	}
}
