// Package weakrand polices randomness quality.
//
// Predictable query IDs are the classic DNS cache-poisoning lever
// (Kaminsky 2008; the POPS/DNS-CPM lineage in PAPERS.md): an attacker
// who can guess the next QID can race the legitimate answer. Two rules:
//
//  1. Anywhere in non-test code, math/rand must not be seeded from the
//     wall clock (rand.Seed/rand.NewSource of a time.Now()-derived
//     value). Two processes started in the same nanosecond emit
//     identical streams — exactly the bug fixed in internal/stub.
//  2. In security-sensitive packages (the resolver core, transports,
//     stub, authoritative server, DNSSEC), math/rand may not be used at
//     all: query IDs, source ports, and nonces must come from
//     crypto/rand. Deterministic simulation packages (workload,
//     topology, simnet) are exempt — they *want* seeded math/rand.
package weakrand

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"resilientdns/internal/analysis/lintutil"
)

const name = "weakrand"

// defaultPkgs lists the security-sensitive packages where math/rand is
// banned outright (rule 2).
const defaultPkgs = "resilientdns/internal/core," +
	"resilientdns/internal/resolve," +
	"resilientdns/internal/transport," +
	"resilientdns/internal/stub," +
	"resilientdns/internal/authserver," +
	"resilientdns/internal/dnssec," +
	"resilientdns/cmd/dnsquery"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "flag math/rand seeded from the wall clock, and any math/rand use in security-sensitive " +
		"packages where query IDs/ports must come from crypto/rand",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.String("pkgs", defaultPkgs,
		"comma-separated package paths (suffix /... for subtrees) where math/rand is banned entirely")
}

func run(pass *analysis.Pass) (any, error) {
	pkgs := pass.Analyzer.Flags.Lookup("pkgs").Value.String()
	banned := lintutil.PkgMatches(pass.Pkg.Path(), pkgs)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	supp := lintutil.NewSuppressor(pass)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		if pkg := fn.Pkg().Path(); pkg != "math/rand" && pkg != "math/rand/v2" {
			return
		}
		if lintutil.InTestFile(pass, call.Pos()) {
			return
		}
		// Rule 1: wall-clock seeding is weak everywhere.
		if fn.Name() == "Seed" || fn.Name() == "NewSource" {
			if arg := wallClockArg(pass, call); arg != "" {
				supp.Report(pass, name, call.Pos(),
					"math/rand seeded from %s is predictable: seed from crypto/rand instead", arg)
				return
			}
		}
		// Rule 2: in security-sensitive packages, any math/rand call.
		if banned {
			supp.Report(pass, name, call.Pos(),
				"math/rand.%s in security-sensitive package %s: use crypto/rand for query IDs, ports, and nonces",
				fn.Name(), pass.Pkg.Path())
		}
	})
	supp.ReportStale(pass, name)
	return nil, nil
}

// wallClockArg reports the wall-clock call (e.g. "time.Now") found
// anywhere inside the call's arguments, or "" if the seed looks fine.
func wallClockArg(pass *analysis.Pass, call *ast.CallExpr) string {
	found := ""
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := typeutil.StaticCallee(pass.TypesInfo, inner)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
				(fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until") {
				found = "time." + fn.Name()
				return false
			}
			return true
		})
	}
	return found
}
