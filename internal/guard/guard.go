// Package guard is the client-facing overload and abuse protection layer
// sitting between the transport servers and the resolution pipeline. It
// keeps the paper's cache path answering under client floods with two
// mechanisms:
//
//   - a sharded, memory-bounded per-client token-bucket rate limiter with
//     RRL-style slip: every Nth rate-limited UDP query is answered with a
//     minimal TC=1 reply instead of dropped, so a legitimate client
//     sharing a hot (NATed or spoofed) address can retry over TCP;
//   - overload admission control: when the UDP server's inflight capacity
//     is saturated, queries degrade to cache/stale-only answering — the
//     paper's long-TTL and serve-stale machinery becomes the degraded
//     mode — instead of blocking the read loop or being dropped.
//
// The guard never talks upstream itself (the onepath analyzer enforces
// this) and takes time only from a simclock.Clock (wallclock analyzer),
// so it composes with the deterministic simulator. TCP is deliberately
// not rate-limited here: slip exists precisely to push clients to TCP,
// where connection backpressure bounds load and source addresses cannot
// be spoofed.
package guard

import (
	"net"
	"net/netip"

	"resilientdns/internal/dnswire"
	"resilientdns/internal/metrics"
	"resilientdns/internal/simclock"
)

// Backend is the query surface the guard protects: the caching server's
// frontend, with its normal and cache-only entry points.
type Backend interface {
	HandleQuery(q *dnswire.Message) *dnswire.Message
	HandleQueryCacheOnly(q *dnswire.Message) *dnswire.Message
}

// Config parameterises a Guard.
type Config struct {
	// ClientRPS is each client address's sustained query budget per
	// second; 0 or negative disables per-client rate limiting.
	ClientRPS float64
	// ClientBurst is the token-bucket depth (instantaneous burst);
	// defaults to 2×ClientRPS.
	ClientBurst float64
	// Slip answers every Nth rate-limited query with a minimal TC=1
	// reply instead of dropping it (RRL slip). 0 disables slipping; 1
	// slips every rate-limited query.
	Slip int
	// MaxClients bounds the limiter's tracked client slots; the least
	// recently seen client is evicted at the bound. Default 65536.
	MaxClients int
	// CacheOnlyOnOverload serves queries arriving while inflight work is
	// saturated from cached data only (live, negative, then stale)
	// instead of dropping them.
	CacheOnlyOnOverload bool
	// Clock supplies time; defaults to the wall clock.
	Clock simclock.Clock
	// Counters receives the guard's decision counts; optional.
	Counters *metrics.GuardCounters
	// PeerExempt, when set, reports whether a source IP belongs to an
	// authenticated mesh peer. Peers bypass the per-client token bucket
	// entirely: a cooperating fleet member must never be rate-limited
	// or slipped a TC=1 mid-attack, and its query volume must not
	// pollute a bucket it may share with NATed clients.
	PeerExempt func(netip.Addr) bool
}

// Guard wraps a Backend with per-client rate limiting and overload
// degradation. It implements transport.Handler and transport.AddrHandler.
type Guard struct {
	backend    Backend
	limiter    *limiter // nil when rate limiting is off
	cacheOnly  bool
	counters   *metrics.GuardCounters
	clock      simclock.Clock
	peerExempt func(netip.Addr) bool
}

// New builds a Guard around backend.
func New(backend Backend, cfg Config) *Guard {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Counters == nil {
		cfg.Counters = &metrics.GuardCounters{}
	}
	g := &Guard{
		backend:    backend,
		cacheOnly:  cfg.CacheOnlyOnOverload,
		counters:   cfg.Counters,
		clock:      cfg.Clock,
		peerExempt: cfg.PeerExempt,
	}
	if cfg.ClientRPS > 0 {
		g.limiter = newLimiter(cfg.ClientRPS, cfg.ClientBurst, cfg.Slip, cfg.MaxClients, cfg.Counters)
	}
	return g
}

// HandleQuery serves a query with no usable source address (TCP, or a
// transport that does not report one): it passes straight through — TCP
// provides its own backpressure and unspoofable sources.
func (g *Guard) HandleQuery(q *dnswire.Message) *dnswire.Message {
	return g.backend.HandleQuery(q)
}

// HandleQueryFrom serves one UDP query, applying the per-client rate
// limit. A nil response means drop (send nothing).
func (g *Guard) HandleQueryFrom(q *dnswire.Message, from net.Addr) *dnswire.Message {
	if resp, limited := g.admit(q, from); limited {
		return resp
	}
	return g.backend.HandleQuery(q)
}

// HandleOverload serves a query that arrived while inflight work was
// saturated: the rate limit still applies (an abusive client gets no
// degraded service either), then the query is answered from cache only —
// never recursing, never dropping a cache hit — or shed when degraded
// answering is off. Called synchronously from the UDP read loop, so it
// must not block; the cache-only path takes no locks across I/O.
func (g *Guard) HandleOverload(q *dnswire.Message, from net.Addr) *dnswire.Message {
	if resp, limited := g.admit(q, from); limited {
		return resp
	}
	if !g.cacheOnly {
		g.counters.Shed.Add(1)
		return nil
	}
	g.counters.CacheOnly.Add(1)
	resp := g.backend.HandleQueryCacheOnly(q)
	if resp != nil && resp.RCode == dnswire.RCodeServFail && len(resp.Answer) == 0 {
		g.counters.CacheOnlyMiss.Add(1)
	}
	return resp
}

// admit runs the rate limiter for one query. limited=false means the
// query may proceed; limited=true means it must not, and resp (possibly
// nil) is what to send instead: nil to drop, or a minimal TC=1 slip
// reply pushing the client to TCP.
func (g *Guard) admit(q *dnswire.Message, from net.Addr) (resp *dnswire.Message, limited bool) {
	if g.limiter == nil {
		return nil, false
	}
	addr, ok := clientAddr(from)
	if !ok {
		// No attributable source: fail open, the admission control
		// behind us still bounds total work.
		return nil, false
	}
	if g.peerExempt != nil && g.peerExempt(addr) {
		// A handshake-confirmed fleet peer: no bucket charged at all.
		g.counters.PeerExempt.Add(1)
		return nil, false
	}
	switch g.limiter.admit(addr, g.clock.Now()) {
	case decisionDrop:
		g.counters.RateLimited.Add(1)
		return nil, true
	case decisionSlip:
		g.counters.RateLimited.Add(1)
		g.counters.Slips.Add(1)
		return slipReply(q), true
	}
	g.counters.Allowed.Add(1)
	return nil, false
}

// slipReply builds the minimal truncated reply for a slipped query: just
// the question with TC=1, inviting a retry over TCP (RRL slip).
func slipReply(q *dnswire.Message) *dnswire.Message {
	resp := q.Reply()
	resp.Flags.RecursionAvailable = true
	resp.Flags.Truncated = true
	return resp
}

// clientAddr extracts the client IP — ports are not identity: one abuser
// rotating source ports must land in one bucket.
func clientAddr(from net.Addr) (netip.Addr, bool) {
	var ip net.IP
	switch a := from.(type) {
	case *net.UDPAddr:
		ip = a.IP
	case *net.TCPAddr:
		ip = a.IP
	default:
		ap, err := netip.ParseAddrPort(from.String())
		if err != nil {
			return netip.Addr{}, false
		}
		return ap.Addr().Unmap(), true
	}
	addr, ok := netip.AddrFromSlice(ip)
	if !ok {
		return netip.Addr{}, false
	}
	return addr.Unmap(), true
}
