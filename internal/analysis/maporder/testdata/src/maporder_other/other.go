// Package maporder_other is outside the deterministic-output list:
// emitting in map order is allowed here (e.g. interactive debug CLIs).
package maporder_other

import "fmt"

// Dump prints a map for humans; ordering is cosmetic.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
