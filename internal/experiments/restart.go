package experiments

import (
	"context"
	"fmt"
	"os"
	"time"

	"resilientdns/internal/core"
	"resilientdns/internal/persist"
	"resilientdns/internal/sim"
	"resilientdns/internal/simclock"
	"resilientdns/internal/simnet"
	"resilientdns/internal/workload"
)

// Restart is the kill-and-restart-mid-blackout experiment: the caching
// server is killed six hours into a 24-hour root+TLD blackout and
// immediately restarted. Three variants replay the same trace:
//
//   - vanilla DNS, cold restart — the baseline twice over;
//   - the combined scheme (refresh + A-LFU renewal), cold restart — the
//     defenses are configured but the crash empties the cache, so the
//     remaining attack window looks like vanilla;
//   - the combined scheme restarted warm from a persist snapshot+journal —
//     the restored cache (plus renewal credit and upstream state) holds
//     the defended failure rate through the rest of the blackout.
//
// The experiment runs its own replay loop so the shared simulator stays
// untouched; it is registered as "restart" but deliberately left out of
// ExperimentIDs(), keeping `dnssim -exp all` output byte-identical.
func (s *Suite) Restart() (*Table, error) {
	const attackDur = 24 * time.Hour
	killAt := s.cfg.Epoch.Add(6*24*time.Hour + 6*time.Hour) // six hours into the blackout
	tr := s.traces[0]
	vanilla := sim.Vanilla()
	combined := sim.RefreshRenew(core.ALFU{C: 5, MaxDays: core.DefaultLFUMax(5)})

	type variant struct {
		label  string
		scheme sim.Scheme
		warm   bool
	}
	variants := []variant{
		{"DNS, cold restart", vanilla, false},
		{"Refresh+A-LFU, cold restart", combined, false},
		{"Refresh+A-LFU, warm restart (persist)", combined, true},
	}

	t := &Table{
		ID:    "restart",
		Title: fmt.Sprintf("Failed queries when the caching server is killed %v into a %v root+TLD blackout (%s)", 6*time.Hour, attackDur, tr.Label),
		Columns: []string{"scheme", "attack fail % before kill", "attack fail % after restart", "replayed entries"},
		Notes: []string{
			"warm restart should hold the defended (near-zero) failure rate after the kill",
			"cold restart of the defended scheme should revert toward the vanilla rate",
		},
	}
	for _, v := range variants {
		out, err := s.runRestart(tr, v.scheme, attackDur, killAt, v.warm)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			v.label,
			pct(ratio(out.preFail, out.preQueries)),
			pct(ratio(out.postFail, out.postQueries)),
			fmt.Sprintf("%d", out.replayed),
		})
	}
	return t, nil
}

// restartOutcome splits the attack-window stub-resolver counts at the kill
// instant.
type restartOutcome struct {
	preQueries, preFail   uint64
	postQueries, postFail uint64
	replayed              int
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// runRestart replays tr against one caching server until killAt, replaces
// the server (warm restarts recover it from a persist store written on the
// virtual clock), and finishes the trace on the replacement.
func (s *Suite) runRestart(tr workload.Trace, scheme sim.Scheme, attackDur time.Duration, killAt time.Time, warm bool) (restartOutcome, error) {
	var out restartOutcome
	clk := simclock.NewVirtual(tr.Start)
	net := simnet.New(clk, s.cfg.Seed)
	net.RTT = 0
	net.Timeout = 0
	s.baseTree.InstallOpt(net, true)
	sched := s.attackFor(s.baseTree, attackDur)
	net.SetAttack(sched)

	var store *persist.Store
	var dir string
	if warm {
		var err error
		dir, err = os.MkdirTemp("", "restart-exp-")
		if err != nil {
			return out, fmt.Errorf("experiments: restart: %w", err)
		}
		defer os.RemoveAll(dir)
		store, err = persist.Open(persist.Options{Dir: dir, Clock: clk})
		if err != nil {
			return out, fmt.Errorf("experiments: restart: %w", err)
		}
	}

	newServer := func() (*core.CachingServer, error) {
		cfg := core.Config{
			Transport:   net,
			Clock:       clk,
			RootHints:   s.baseTree.RootHints,
			RefreshTTL:  scheme.RefreshTTL,
			Renewal:     scheme.Renewal,
			MaxTTL:      scheme.MaxTTL,
			NegativeTTL: scheme.NegativeTTL,
			ServeStale:  scheme.ServeStale,
		}
		if store != nil {
			cfg.OnCacheChange = store.Observe
		}
		return core.NewCachingServer(cfg)
	}
	cs, err := newServer()
	if err != nil {
		return out, fmt.Errorf("experiments: restart: %w", err)
	}

	ctx := context.Background()
	killed := false
	// checkpointAt stands in for the periodic snapshot schedule: the last
	// full snapshot before the crash lands at the blackout's onset, so the
	// journal alone carries the six attack hours before the kill.
	checkpointAt := s.cfg.Epoch.Add(6 * 24 * time.Hour)
	checkpointed := false

	for _, q := range tr.Queries {
		// Renewals due before this query fire at their exact instants.
		for {
			due, ok := cs.NextRenewalDue()
			if !ok || due.After(q.At) {
				break
			}
			clk.AdvanceTo(due)
			cs.ProcessDueRenewals(ctx, clk.Now())
		}
		if store != nil && !checkpointed && !q.At.Before(checkpointAt) {
			clk.AdvanceTo(checkpointAt)
			if err := store.Checkpoint(cs); err != nil {
				return out, fmt.Errorf("experiments: restart: %w", err)
			}
			checkpointed = true
		}
		if !killed && !q.At.Before(killAt) {
			clk.AdvanceTo(killAt)
			killed = true
			// The crash: the old process vanishes mid-journal. Deltas the
			// flush ticker had already written survive; nothing is
			// checkpointed cleanly.
			if store != nil {
				if err := store.FlushJournal(); err != nil {
					return out, fmt.Errorf("experiments: restart: %w", err)
				}
				if err := store.Close(); err != nil {
					return out, fmt.Errorf("experiments: restart: %w", err)
				}
				store, err = persist.Open(persist.Options{Dir: dir, Clock: clk})
				if err != nil {
					return out, fmt.Errorf("experiments: restart: %w", err)
				}
			}
			cs, err = newServer()
			if err != nil {
				return out, fmt.Errorf("experiments: restart: %w", err)
			}
			if store != nil {
				rep, err := store.Recover(cs)
				if err != nil {
					return out, fmt.Errorf("experiments: restart: %w", err)
				}
				out.replayed = rep.Replayed
			}
		}
		clk.AdvanceTo(q.At)
		_, err := cs.Resolve(ctx, q.Name, q.Type)
		if sched.Active(q.At) {
			if killed {
				out.postQueries++
				if err != nil {
					out.postFail++
				}
			} else {
				out.preQueries++
				if err != nil {
					out.preFail++
				}
			}
		}
	}
	if store != nil {
		store.Close()
	}
	return out, nil
}
